// Package token defines the lexical tokens of the Net Compute Language
// (NCL), the C/C++ extension proposed by "Don't You Worry 'Bout a Packet"
// (HotNets '21). The token set is a C subset plus the NCL declaration
// specifiers (_net_, _out_, _in_, _ctrl_, _at_, _ext_, _win_).
package token

import "ncl/internal/ncl/source"

// Kind enumerates token kinds.
type Kind int

const (
	ILLEGAL Kind = iota
	EOF

	// Literals and identifiers.
	IDENT     // accum
	INTLIT    // 123, 0x7f
	CHARLIT   // 'a'
	STRINGLIT // "s1"

	// Operators and punctuation.
	ADD // +
	SUB // -
	MUL // *
	DIV // /
	MOD // %

	AND   // &
	OR    // |
	XOR   // ^
	SHL   // <<
	SHR   // >>
	TILDE // ~

	LAND // &&
	LOR  // ||
	NOT  // !

	ASSIGN    // =
	ADDASSIGN // +=
	SUBASSIGN // -=
	MULASSIGN // *=
	DIVASSIGN // /=
	MODASSIGN // %=
	ANDASSIGN // &=
	ORASSIGN  // |=
	XORASSIGN // ^=
	SHLASSIGN // <<=
	SHRASSIGN // >>=

	INC // ++
	DEC // --

	EQ // ==
	NE // !=
	LT // <
	GT // >
	LE // <=
	GE // >=

	LPAREN   // (
	RPAREN   // )
	LBRACE   // {
	RBRACE   // }
	LBRACK   // [
	RBRACK   // ]
	COMMA    // ,
	SEMI     // ;
	COLON    // :
	SCOPE    // ::
	QUESTION // ?
	DOT      // .
	ARROW    // ->

	// Keywords (C subset).
	KWVOID
	KWBOOL
	KWCHAR
	KWINT
	KWUNSIGNED
	KWSIGNED
	KWSHORT
	KWLONG
	KWFLOAT // recognized so we can reject it with a good message
	KWDOUBLE
	KWAUTO
	KWCONST
	KWSTRUCT
	KWIF
	KWELSE
	KWFOR
	KWWHILE
	KWDO
	KWRETURN
	KWBREAK
	KWCONTINUE
	KWTRUE
	KWFALSE
	KWSIZEOF
	KWSWITCH // recognized; rejected in parser with a clear message
	KWCASE
	KWDEFAULT
	KWGOTO

	// NCL declaration specifiers (§4.1 of the paper).
	NET  // _net_
	OUT  // _out_
	IN   // _in_
	CTRL // _ctrl_
	AT   // _at_
	EXT  // _ext_
	WIN  // _win_

	kindCount
)

var names = [...]string{
	ILLEGAL:   "ILLEGAL",
	EOF:       "EOF",
	IDENT:     "IDENT",
	INTLIT:    "INTLIT",
	CHARLIT:   "CHARLIT",
	STRINGLIT: "STRINGLIT",

	ADD:   "+",
	SUB:   "-",
	MUL:   "*",
	DIV:   "/",
	MOD:   "%",
	AND:   "&",
	OR:    "|",
	XOR:   "^",
	SHL:   "<<",
	SHR:   ">>",
	TILDE: "~",
	LAND:  "&&",
	LOR:   "||",
	NOT:   "!",

	ASSIGN:    "=",
	ADDASSIGN: "+=",
	SUBASSIGN: "-=",
	MULASSIGN: "*=",
	DIVASSIGN: "/=",
	MODASSIGN: "%=",
	ANDASSIGN: "&=",
	ORASSIGN:  "|=",
	XORASSIGN: "^=",
	SHLASSIGN: "<<=",
	SHRASSIGN: ">>=",

	INC: "++",
	DEC: "--",

	EQ: "==",
	NE: "!=",
	LT: "<",
	GT: ">",
	LE: "<=",
	GE: ">=",

	LPAREN:   "(",
	RPAREN:   ")",
	LBRACE:   "{",
	RBRACE:   "}",
	LBRACK:   "[",
	RBRACK:   "]",
	COMMA:    ",",
	SEMI:     ";",
	COLON:    ":",
	SCOPE:    "::",
	QUESTION: "?",
	DOT:      ".",
	ARROW:    "->",

	KWVOID:     "void",
	KWBOOL:     "bool",
	KWCHAR:     "char",
	KWINT:      "int",
	KWUNSIGNED: "unsigned",
	KWSIGNED:   "signed",
	KWSHORT:    "short",
	KWLONG:     "long",
	KWFLOAT:    "float",
	KWDOUBLE:   "double",
	KWAUTO:     "auto",
	KWCONST:    "const",
	KWSTRUCT:   "struct",
	KWIF:       "if",
	KWELSE:     "else",
	KWFOR:      "for",
	KWWHILE:    "while",
	KWDO:       "do",
	KWRETURN:   "return",
	KWBREAK:    "break",
	KWCONTINUE: "continue",
	KWTRUE:     "true",
	KWFALSE:    "false",
	KWSIZEOF:   "sizeof",
	KWSWITCH:   "switch",
	KWCASE:     "case",
	KWDEFAULT:  "default",
	KWGOTO:     "goto",

	NET:  "_net_",
	OUT:  "_out_",
	IN:   "_in_",
	CTRL: "_ctrl_",
	AT:   "_at_",
	EXT:  "_ext_",
	WIN:  "_win_",
}

// String returns the literal spelling for operator/keyword kinds and the
// kind name for the rest.
func (k Kind) String() string {
	if k >= 0 && int(k) < len(names) && names[k] != "" {
		return names[k]
	}
	return "Kind(" + itoa(int(k)) + ")"
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// Keywords maps keyword spellings (including NCL specifiers) to kinds.
var Keywords = map[string]Kind{
	"void": KWVOID, "bool": KWBOOL, "char": KWCHAR, "int": KWINT,
	"unsigned": KWUNSIGNED, "signed": KWSIGNED, "short": KWSHORT, "long": KWLONG,
	"float": KWFLOAT, "double": KWDOUBLE,
	"auto": KWAUTO, "const": KWCONST, "struct": KWSTRUCT,
	"if": KWIF, "else": KWELSE, "for": KWFOR, "while": KWWHILE, "do": KWDO,
	"return": KWRETURN, "break": KWBREAK, "continue": KWCONTINUE,
	"true": KWTRUE, "false": KWFALSE, "sizeof": KWSIZEOF,
	"switch": KWSWITCH, "case": KWCASE, "default": KWDEFAULT, "goto": KWGOTO,
	"_net_": NET, "_out_": OUT, "_in_": IN, "_ctrl_": CTRL,
	"_at_": AT, "_ext_": EXT, "_win_": WIN,
}

// IsSpecifier reports whether k is an NCL declaration specifier.
func (k Kind) IsSpecifier() bool {
	switch k {
	case NET, OUT, IN, CTRL, AT, EXT, WIN:
		return true
	}
	return false
}

// IsTypeKeyword reports whether k can begin a C type.
func (k Kind) IsTypeKeyword() bool {
	switch k {
	case KWVOID, KWBOOL, KWCHAR, KWINT, KWUNSIGNED, KWSIGNED, KWSHORT, KWLONG,
		KWFLOAT, KWDOUBLE, KWAUTO, KWCONST, KWSTRUCT:
		return true
	}
	return false
}

// IsAssignOp reports whether k is an assignment operator (including
// compound assignments).
func (k Kind) IsAssignOp() bool {
	switch k {
	case ASSIGN, ADDASSIGN, SUBASSIGN, MULASSIGN, DIVASSIGN, MODASSIGN,
		ANDASSIGN, ORASSIGN, XORASSIGN, SHLASSIGN, SHRASSIGN:
		return true
	}
	return false
}

// Token is a lexed token: kind, literal text, and position.
type Token struct {
	Kind Kind
	Lit  string
	Pos  source.Pos
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT, INTLIT, CHARLIT, STRINGLIT:
		return t.Kind.String() + "(" + t.Lit + ")"
	}
	return t.Kind.String()
}

// Precedence returns the C binary-operator precedence of k (higher binds
// tighter), or 0 if k is not a binary operator. The ternary conditional and
// assignments are handled separately by the parser.
func (k Kind) Precedence() int {
	switch k {
	case LOR:
		return 1
	case LAND:
		return 2
	case OR:
		return 3
	case XOR:
		return 4
	case AND:
		return 5
	case EQ, NE:
		return 6
	case LT, GT, LE, GE:
		return 7
	case SHL, SHR:
		return 8
	case ADD, SUB:
		return 9
	case MUL, DIV, MOD:
		return 10
	}
	return 0
}
