package codegen

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"ncl/internal/ncl/interp"
	"ncl/internal/pisa"
)

// TestDifferentialMapKernels fuzzes kernels over Map lookups and
// register state, comparing the compiled pipeline against the
// interpreter with identical Map contents.
func TestDifferentialMapKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < 25; trial++ {
		var body strings.Builder
		fmt.Fprintf(&body, "if (auto *idx = M[key]) {\n")
		n := 1 + rng.Intn(3)
		for s := 0; s < n; s++ {
			switch rng.Intn(3) {
			case 0:
				fmt.Fprintf(&body, "  st[*idx] += d[%d];\n", rng.Intn(2))
			case 1:
				fmt.Fprintf(&body, "  d[%d] = st[*idx];\n", rng.Intn(2))
			case 2:
				fmt.Fprintf(&body, "  d[%d] = (int)*idx * %d;\n", rng.Intn(2), 1+rng.Intn(5))
			}
		}
		body.WriteString("  _reflect();\n} else { d[0] = -1; }\n")
		src := `
_net_ ncl::Map<uint64_t, uint8_t, 32> M;
_net_ int st[32] = {0};
_net_ _out_ void k(uint64_t key, int *d) {
` + body.String() + "}\n"

		m := buildModule(t, src, 2)
		target := pisa.DefaultTarget()
		ids := map[string]uint32{"k": 1}
		p, err := Compile(m, Options{Target: target, KernelIDs: ids})
		if err != nil {
			t.Logf("trial %d rejected: %v", trial, err)
			continue
		}
		sw := loadSwitch(t, p, target)
		f := m.FuncByName("k")
		ist := interp.NewState(m)
		mg := m.GlobalByName("M")
		stG := m.GlobalByName("st")

		// Identical map contents in both engines.
		for e := 0; e < 8; e++ {
			key := uint64(rng.Intn(40))
			val := uint64(rng.Intn(32))
			if err := ist.MapInsert(mg, key, val); err == nil {
				if err := sw.InstallEntry("M", key, val); err != nil {
					t.Fatal(err)
				}
			}
		}

		for w := 0; w < 8; w++ {
			key := uint64(rng.Intn(40))
			dv := []uint64{uint64(rng.Intn(100)), uint64(rng.Intn(100))}
			wi := interp.NewWindow(f)
			wp := interp.NewWindow(f)
			wi.Data[0][0], wp.Data[0][0] = key, key
			copy(wi.Data[1], dv)
			copy(wp.Data[1], dv)
			di, err := interp.Exec(f, ist, wi)
			if err != nil {
				t.Fatalf("trial %d: interp: %v\n%s", trial, err, src)
			}
			dp, err := sw.ExecWindow(1, wp)
			if err != nil {
				t.Fatalf("trial %d: pisa: %v\n%s", trial, err, src)
			}
			if di.Kind != dp.Kind {
				t.Fatalf("trial %d key %d: decision %v vs %v\n%s", trial, key, di.Kind, dp.Kind, src)
			}
			for i := range wi.Data[1] {
				if wi.Data[1][i] != wp.Data[1][i] {
					t.Fatalf("trial %d: d[%d] %d vs %d\n%s", trial, i, wi.Data[1][i], wp.Data[1][i], src)
				}
			}
			for i := 0; i < 32; i++ {
				pv := readState(sw, "st", i)
				if ist.Regs[stG][i] != pv {
					t.Fatalf("trial %d: st[%d] %d vs %d\n%s", trial, i, ist.Regs[stG][i], pv, src)
				}
			}
		}
	}
}

// TestExportUnderPredicationRegression pins the miscompile the map fuzzer
// found: a predicated cluster whose export feeds a select must execute
// unconditionally, or the miss path reads a stale zero from the export
// field (here, d[1] must keep its value 20 on a Map miss).
func TestExportUnderPredicationRegression(t *testing.T) {
	src := `
_net_ ncl::Map<uint64_t, uint8_t, 32> M;
_net_ int st[32] = {0};
_net_ _out_ void k(uint64_t key, int *d) {
    if (auto *idx = M[key]) {
        d[1] = st[*idx];
        st[*idx] += d[1];
        _reflect();
    } else { d[0] = -1; }
}
`
	m := buildModule(t, src, 2)
	target := pisa.DefaultTarget()
	p := compileProgram(t, m, target)
	sw := loadSwitch(t, p, target)
	win := interp.NewWindow(m.FuncByName("k"))
	win.Data[0][0] = 9 // not installed: miss
	win.Data[1][0] = 10
	win.Data[1][1] = 20
	dec, err := sw.ExecWindow(1, win)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Kind != interp.Pass {
		t.Errorf("miss must pass, got %v", dec.Kind)
	}
	if int64(win.Data[1][0]) != -1 || win.Data[1][1] != 20 {
		t.Errorf("miss path corrupted the window: %v (want [-1 20])", win.Data[1])
	}
}

// TestGuardedIndexNoTrap: an unconditional-due-to-export cluster whose
// index was guarded by the branch must not trap when the guard is false
// and the raw index is out of range.
func TestGuardedIndexNoTrap(t *testing.T) {
	src := `
_net_ unsigned st[8] = {0};
_net_ _out_ void k(unsigned *d) {
    if (d[0] < 8) {
        d[1] = ++st[d[0]];
    }
}
`
	m := buildModule(t, src, 2)
	target := pisa.DefaultTarget()
	p := compileProgram(t, m, target)
	sw := loadSwitch(t, p, target)
	f := m.FuncByName("k")

	// In range: counter increments and exports.
	win := interp.NewWindow(f)
	win.Data[0][0] = 3
	if _, err := sw.ExecWindow(1, win); err != nil {
		t.Fatal(err)
	}
	if win.Data[0][1] != 1 {
		t.Errorf("in-range increment = %d, want 1", win.Data[0][1])
	}
	// Out of range: the guard is false; the execution must neither trap
	// nor mutate state.
	win2 := interp.NewWindow(f)
	win2.Data[0][0] = 100
	win2.Data[0][1] = 55
	if _, err := sw.ExecWindow(1, win2); err != nil {
		t.Fatalf("guarded out-of-range index trapped: %v", err)
	}
	if win2.Data[0][1] != 55 {
		t.Errorf("untaken branch wrote the window: %d", win2.Data[0][1])
	}
	for i := 0; i < 8; i++ {
		v, _ := sw.ReadRegister("st", i)
		want := uint64(0)
		if i == 3 {
			want = 1
		}
		if v != want {
			t.Errorf("st[%d] = %d, want %d", i, v, want)
		}
	}
}

// TestDifferentialBloomKernels fuzzes Bloom add/test sequences across
// both engines.
func TestDifferentialBloomKernels(t *testing.T) {
	src := `
_net_ ncl::Bloom<2048, 3> seen;
_net_ _out_ void k(uint64_t key, bool *dup, bool remember) {
    dup[0] = seen.test(key);
    if (remember) seen.add(key);
}
`
	m := buildModule(t, src, 1)
	target := pisa.DefaultTarget()
	p := compileProgram(t, m, target)
	sw := loadSwitch(t, p, target)
	f := m.FuncByName("k")
	ist := interp.NewState(m)

	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 300; i++ {
		key := uint64(rng.Intn(64))
		remember := uint64(rng.Intn(2))
		wi := interp.NewWindow(f)
		wp := interp.NewWindow(f)
		wi.Data[0][0], wp.Data[0][0] = key, key
		wi.Data[2][0], wp.Data[2][0] = remember, remember
		if _, err := interp.Exec(f, ist, wi); err != nil {
			t.Fatal(err)
		}
		if _, err := sw.ExecWindow(1, wp); err != nil {
			t.Fatal(err)
		}
		if wi.Data[1][0] != wp.Data[1][0] {
			t.Fatalf("step %d key %d: bloom test diverged: interp %d vs pisa %d",
				i, key, wi.Data[1][0], wp.Data[1][0])
		}
	}
}
