package codegen

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"testing"

	"ncl/internal/ncl/interp"
	"ncl/internal/ncl/ir"
	"ncl/internal/ncl/lower"
	"ncl/internal/ncl/parser"
	"ncl/internal/ncl/passes"
	"ncl/internal/ncl/sema"
	"ncl/internal/ncl/source"
	"ncl/internal/pisa"
)

// TestDifferentialLong is the deep fuzzing session: set NCL_LONG_FUZZ to
// a trial count (e.g. 2000) to run it. It generates richer kernels than
// the in-suite fuzzers — maps, blooms, sketches, helpers, memcpy, window
// metadata, nested control flow with break/continue — and requires
// interpreter/pipeline agreement on windows, decisions, and state.
func TestDifferentialLong(t *testing.T) {
	trialsStr := os.Getenv("NCL_LONG_FUZZ")
	if trialsStr == "" {
		t.Skip("set NCL_LONG_FUZZ=<trials> to run the long differential fuzz")
	}
	trials, err := strconv.Atoi(trialsStr)
	if err != nil || trials <= 0 {
		t.Fatalf("bad NCL_LONG_FUZZ value %q", trialsStr)
	}
	seed := int64(1)
	if s := os.Getenv("NCL_LONG_FUZZ_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad seed %q", s)
		}
		seed = v
	}
	rng := rand.New(rand.NewSource(seed))

	rejected := 0
	for trial := 0; trial < trials; trial++ {
		W := []int{1, 2, 4, 8}[rng.Intn(4)]
		src := genKernel(rng, W)

		var diags source.DiagList
		file := parser.ParseSource("f.ncl", src, &diags)
		info := sema.Check(file, &diags)
		if diags.HasErrors() {
			t.Fatalf("trial %d: generator produced invalid source: %v\n%s", trial, diags.Err(), src)
		}
		m := lower.Lower("f", info, W, &diags)
		if diags.HasErrors() {
			t.Fatalf("trial %d: lowering: %v\n%s", trial, diags.Err(), src)
		}
		passes.Optimize(m)
		if err := ir.Verify(m); err != nil {
			t.Fatalf("trial %d: verify: %v\n%s", trial, err, src)
		}
		target := pisa.DefaultTarget()
		p, err := Compile(m, Options{Target: target, KernelIDs: map[string]uint32{"k": 1}})
		if err != nil {
			rejected++
			continue // resource rejection is legitimate
		}
		sw := pisa.NewSwitch(target)
		if err := sw.Load(p); err != nil {
			t.Fatalf("trial %d: load: %v\n%s", trial, err, src)
		}
		f := m.FuncByName("k")
		ist := interp.NewState(m)
		mg := m.GlobalByName("M")
		for e := 0; e < 6; e++ {
			key, val := uint64(rng.Intn(24)), uint64(rng.Intn(16))
			if ist.MapInsert(mg, key, val) == nil {
				if err := sw.InstallEntry("M", key, val); err != nil {
					t.Fatal(err)
				}
			}
		}
		stG := m.GlobalByName("st")

		for wt := 0; wt < 8; wt++ {
			wi := interp.NewWindow(f)
			wp := interp.NewWindow(f)
			for pi := range wi.Data {
				for i := range wi.Data[pi] {
					v := uint64(rng.Int63n(1 << 14))
					wi.Data[pi][i], wp.Data[pi][i] = v, v
				}
			}
			meta := map[string]uint64{"seq": uint64(rng.Intn(8)), "from": uint64(rng.Intn(3))}
			for k, v := range meta {
				wi.Meta[k], wp.Meta[k] = v, v
			}
			di, err := interp.Exec(f, ist, wi)
			if err != nil {
				t.Fatalf("trial %d: interp: %v\n%s", trial, err, src)
			}
			dp, err := sw.ExecWindow(1, wp)
			if err != nil {
				t.Fatalf("trial %d: pisa: %v\n%s", trial, err, src)
			}
			if di.Kind != dp.Kind || di.Label != dp.Label {
				t.Fatalf("trial %d: decision %v/%q vs %v/%q\n%s", trial, di.Kind, di.Label, dp.Kind, dp.Label, src)
			}
			for pi := range wi.Data {
				for i := range wi.Data[pi] {
					if wi.Data[pi][i] != wp.Data[pi][i] {
						t.Fatalf("trial %d: window[%d][%d] %d vs %d\n%s\nIR:\n%s",
							trial, pi, i, wi.Data[pi][i], wp.Data[pi][i], src, m.FuncByName("k"))
					}
				}
			}
			for i := 0; i < 16; i++ {
				pv := readState(sw, "st", i)
				if ist.Regs[stG][i] != pv {
					t.Fatalf("trial %d: st[%d] %d vs %d\n%s", trial, i, ist.Regs[stG][i], pv, src)
				}
			}
		}
	}
	t.Logf("long fuzz: %d trials, %d rejected by resource limits (%.1f%%)",
		trials, rejected, 100*float64(rejected)/float64(trials))
}

// genKernel produces one random valid kernel over a fixed state shape.
func genKernel(rng *rand.Rand, W int) string {
	arith := []string{"+", "-", "*", "&", "|", "^"}
	cmps := []string{"<", ">", "==", "!=", "<=", ">="}
	var expr func(d int) string
	expr = func(d int) string {
		if d <= 0 || rng.Intn(3) == 0 {
			switch rng.Intn(6) {
			case 0:
				return fmt.Sprintf("a[%d]", rng.Intn(W))
			case 1:
				return fmt.Sprintf("(int)key")
			case 2:
				return fmt.Sprintf("%d", rng.Intn(64))
			case 3:
				return "(int)window.seq"
			case 4:
				return "(int)window.from"
			default:
				return "(int)flag"
			}
		}
		if rng.Intn(7) == 0 {
			return fmt.Sprintf("(%s %s %s ? %s : %s)",
				expr(d-1), cmps[rng.Intn(len(cmps))], expr(d-1), expr(d-1), expr(d-1))
		}
		return fmt.Sprintf("(%s %s %s)", expr(d-1), arith[rng.Intn(len(arith))], expr(d-1))
	}
	var stmts func(depth, n int) string
	stmts = func(depth, n int) string {
		var b strings.Builder
		for s := 0; s < n; s++ {
			switch rng.Intn(10) {
			case 0, 1:
				fmt.Fprintf(&b, "a[%d] = %s;\n", rng.Intn(W), expr(2))
			case 2:
				fmt.Fprintf(&b, "st[(unsigned)(%s) %% 16] += %s;\n", expr(1), expr(1))
			case 3:
				fmt.Fprintf(&b, "if (auto *i = M[key]) { a[%d] = (int)*i %s %s; }\n",
					rng.Intn(W), arith[rng.Intn(len(arith))], expr(1))
			case 4:
				fmt.Fprintf(&b, "if (seen.test(key %% %d)) a[%d] = %s; else seen.add(key %% %d);\n",
					2+rng.Intn(8), rng.Intn(W), expr(1), 2+rng.Intn(8))
			case 5:
				fmt.Fprintf(&b, "cm.add(key, (unsigned)(%s) & 7);\na[%d] = (int)cm.estimate(key);\n",
					expr(1), rng.Intn(W))
			case 6:
				cond := fmt.Sprintf("%s %s %s", expr(1), cmps[rng.Intn(len(cmps))], expr(1))
				if depth > 0 {
					fmt.Fprintf(&b, "if (%s) {\n%s} else {\n%s}\n", cond,
						stmts(depth-1, 1+rng.Intn(2)), stmts(depth-1, 1))
				} else {
					fmt.Fprintf(&b, "if (%s) a[%d] = %s;\n", cond, rng.Intn(W), expr(1))
				}
			case 7:
				fmt.Fprintf(&b, "a[%d] = mix(%s, %s);\n", rng.Intn(W), expr(1), expr(1))
			case 8:
				switch rng.Intn(4) {
				case 0:
					fmt.Fprintf(&b, "if (%s > %s) _drop();\n", expr(1), expr(1))
				case 1:
					fmt.Fprintf(&b, "if (%s < %s) _reflect();\n", expr(1), expr(1))
				case 2:
					fmt.Fprintf(&b, "if (%s == %s) _pass(\"alt\");\n", expr(1), expr(1))
				default:
					fmt.Fprintf(&b, "if (%s != %s) _bcast();\n", expr(1), expr(1))
				}
			case 9:
				fmt.Fprintf(&b, "for (unsigned i = 0; i < window.len; ++i) { if (a[0] == %d) break; a[0] ^= (int)i; }\n",
					rng.Intn(9))
			}
		}
		return b.String()
	}
	return `
_net_ int st[16] = {0};
_net_ ncl::Map<uint64_t, uint8_t, 16> M;
_net_ ncl::Bloom<512, 2> seen;
_net_ ncl::CountMin<128, 2> cm;
int mix(int x, int y) { if (x > y) return x - y; return x + y; }
_net_ _out_ void k(int *a, uint64_t key, bool flag) {
` + stmts(2, 3+rng.Intn(5)) + "}\n"
}
