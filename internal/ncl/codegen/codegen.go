package codegen

import (
	"fmt"
	"sort"

	"ncl/internal/ncl/ir"
	"ncl/internal/ncl/types"
	"ncl/internal/pisa"
)

// Options configures compilation of one location module.
type Options struct {
	Target    pisa.TargetConfig
	KernelIDs map[string]uint32 // stable program-wide kernel ids by name
}

// Compile lowers an optimized, versioned location module into a loadable
// PISA program. It is the code-generation stage of Fig. 6 in the paper,
// with the simulator standing in for the proprietary backend.
func Compile(m *ir.Module, opts Options) (*pisa.Program, error) {
	if opts.Target.Stages == 0 {
		opts.Target = pisa.DefaultTarget()
	}
	prog := &pisa.Program{Name: m.Name, Loc: m.Loc}
	for _, wf := range m.WinFields {
		prog.UserFields = append(prog.UserFields, wf.Name)
	}
	sort.Strings(prog.UserFields)
	pins := map[string]int{}
	labels := &labelInterner{}
	sched := newScheduler(opts.Target, pins)

	regDefs := map[string]pisa.RegisterDef{}
	tableSet := map[string]bool{}

	for _, g := range m.Globals {
		if g.IsMap() {
			tableSet[g.Name] = true
		}
	}

	for _, f := range m.Funcs {
		if f.Kind != ir.OutKernel {
			continue
		}
		fk, err := flatten(f, m.WinFields, labels)
		if err != nil {
			return nil, err
		}
		clusters, err := partitionState(fk)
		if err != nil {
			return nil, fmt.Errorf("kernel %s: %w", f.Name, err)
		}
		// A cluster may export only one value to the PHV; clusters that
		// need more split into per-access chained clusters, each in its
		// own recirculation pass (atomicity preserved by the per-window
		// pipeline serialization).
		for round := 0; ; round++ {
			needSplit, err := assignExports(fk, clusters)
			if err != nil {
				return nil, fmt.Errorf("kernel %s: %w", f.Name, err)
			}
			if len(needSplit) == 0 {
				break
			}
			if round > 1 {
				return nil, fmt.Errorf("kernel %s: stateful access splitting did not converge", f.Name)
			}
			split := map[*cluster]bool{}
			for _, c := range needSplit {
				split[c] = true
			}
			var next []*cluster
			for _, c := range clusters {
				if !split[c] {
					next = append(next, c)
					continue
				}
				prev := c.prev
				for _, a := range c.accs {
					nc := &cluster{reg: c.reg, idx: a.idx, accs: []*access{a}, prev: prev}
					next = append(next, nc)
					prev = nc
				}
				// Re-chain any successor that pointed at c.
				for _, d := range clusters {
					if d.prev == c {
						d.prev = prev
					}
				}
			}
			clusters = next
		}
		for _, c := range clusters {
			if err := c.synthesizeAll(fk.builder, opts.Target.MaxSALUOps); err != nil {
				return nil, fmt.Errorf("kernel %s: %w", f.Name, err)
			}
		}
		k, err := emitKernel(fk, clusters, sched, opts)
		if err != nil {
			return nil, fmt.Errorf("kernel %s: %w", f.Name, err)
		}
		prog.Kernels = append(prog.Kernels, k)

		// Merge register definitions.
		for _, rs := range fk.regs {
			def := pisa.RegisterDef{
				Name:   rs.name,
				Elems:  rs.elems,
				Bits:   rs.elemTy.BitWidth(),
				Signed: rs.elemTy.Kind == types.Int && rs.elemTy.Signed,
				Init:   rs.init,
				Ctrl:   rs.ctrl,
			}
			if prev, ok := regDefs[rs.name]; ok {
				if prev.Elems != def.Elems || prev.Bits != def.Bits {
					return nil, fmt.Errorf("register %s has conflicting shapes across kernels (e.g. different lane splits); place the kernels on different switches", rs.name)
				}
				continue
			}
			regDefs[rs.name] = def
		}
		for _, lk := range fk.lookups {
			tableSet[lk.g.Name] = true
		}
	}

	// Finalize registers with their pinned stages.
	names := make([]string, 0, len(regDefs))
	for n := range regDefs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		def := regDefs[n]
		if st, ok := pins["reg:"+n]; ok {
			def.Stage = st
		}
		prog.Registers = append(prog.Registers, def)
	}
	tnames := make([]string, 0, len(tableSet))
	for n := range tableSet {
		tnames = append(tnames, n)
	}
	sort.Strings(tnames)
	prog.Tables = tnames
	prog.Labels = labels.Labels

	for _, k := range prog.Kernels {
		if id, ok := opts.KernelIDs[k.Name]; ok {
			k.ID = id
		}
	}
	if err := prog.Validate(opts.Target); err != nil {
		return nil, err
	}
	return prog, nil
}

// consumerRef records one use of a node.
type consumerRef struct {
	node     *gval    // consuming arith node (nil for non-node consumers)
	cluster  *cluster // consuming cluster store expression (nil otherwise)
	external bool     // table key, final output, cluster index/pred
}

// assignExports decides, per cluster, which single value escapes to the
// PHV, and records load ownership used by micro synthesis. Clusters
// needing more than one export are returned for splitting.
func assignExports(fk *flatKernel, clusters []*cluster) ([]*cluster, error) {
	owner := map[*gval]*cluster{}
	for _, c := range clusters {
		for _, a := range c.accs {
			if a.kind == accLoad {
				owner[a.load] = c
			}
		}
	}
	// Consumers of every node.
	consumers := map[*gval][]consumerRef{}
	addC := func(n *gval, c consumerRef) {
		if n != nil {
			consumers[n] = append(consumers[n], c)
		}
	}
	for _, n := range fk.builder.nodes {
		if n.kind == gArith {
			for _, a := range n.args {
				addC(a, consumerRef{node: n})
			}
		}
	}
	for _, lk := range fk.lookups {
		addC(lk.key, consumerRef{external: true})
	}
	for _, c := range clusters {
		addC(c.idx, consumerRef{external: true})
		for _, a := range c.accs {
			if a.kind == accStore {
				addC(a.val, consumerRef{cluster: c})
				addC(a.pred, consumerRef{cluster: c})
			}
		}
	}
	for _, vs := range fk.paramFinal {
		for _, v := range vs {
			addC(v, consumerRef{external: true})
		}
	}
	addC(fk.fwd, consumerRef{external: true})
	addC(fk.fwdLabel, consumerRef{external: true})

	var needSplit []*cluster
	for _, c := range clusters {
		c.owner = owner
		// dep_C: does n depend on a load of c?
		memo := map[*gval]bool{}
		var depC func(n *gval) bool
		depC = func(n *gval) bool {
			if owner[n] == c {
				return true
			}
			if d, ok := memo[n]; ok {
				return d
			}
			memo[n] = false
			d := false
			if n.kind == gArith {
				for _, a := range n.args {
					if depC(a) {
						d = true
						break
					}
				}
			}
			memo[n] = d
			return d
		}
		// Must-internal set: load-dependent nodes in store expressions.
		internal := map[*gval]bool{}
		var collect func(n *gval)
		collect = func(n *gval) {
			if n == nil || !depC(n) || internal[n] {
				return
			}
			internal[n] = true
			if n.kind == gArith {
				for _, a := range n.args {
					collect(a)
				}
			}
		}
		for _, a := range c.accs {
			if a.kind == accStore {
				collect(a.val)
				collect(a.pred)
			}
		}
		c.internal = internal
		// Export candidates: internal nodes or loads used outside.
		var exports []*gval
		candidate := func(n *gval) {
			for _, cr := range consumers[n] {
				switch {
				case cr.cluster == c:
					continue
				case cr.node != nil && internal[cr.node]:
					continue
				}
				exports = append(exports, n)
				return
			}
		}
		for n := range internal {
			candidate(n)
		}
		for _, a := range c.accs {
			if a.kind == accLoad && !internal[a.load] {
				candidate(a.load)
			}
		}
		if len(exports) > 1 {
			if len(c.accs) <= 1 {
				return nil, fmt.Errorf("stateful access to %s needs %d exported values from one access", c.reg.name, len(exports))
			}
			needSplit = append(needSplit, c)
			continue
		}
		if len(exports) == 1 {
			c.export = exports[0]
		} else {
			c.export = nil
		}
	}
	return needSplit, nil
}

// synthesizeAll computes the cluster predicate then the micro-program.
func (c *cluster) synthesizeAll(b *builder, maxOps int) error {
	// Cluster-level predicate: nil when any access is unconditional or
	// when a predicate depends on this cluster's own loads (the SALU then
	// runs unconditionally and per-access selects apply inside).
	loadDep := func(n *gval) bool {
		var walk func(v *gval) bool
		seen := map[*gval]bool{}
		walk = func(v *gval) bool {
			if c.owner[v] == c {
				return true
			}
			if seen[v] {
				return false
			}
			seen[v] = true
			if v.kind == gArith {
				for _, a := range v.args {
					if walk(a) {
						return true
					}
				}
			}
			return false
		}
		return walk(n)
	}
	// guard = OR of access predicates; invalid when any access is
	// unconditional or a predicate depends on this cluster's own loads.
	var guard *gval
	guardValid := true
	for _, a := range c.accs {
		if a.pred == nil || loadDep(a.pred) {
			guardValid = false
			break
		}
		if guard == nil {
			guard = a.pred
		} else {
			guard = b.or(guard, a.pred)
		}
	}
	switch {
	case c.export != nil:
		// A cluster that exports a value must run unconditionally:
		// consumers of the export (select arms, window writebacks) read
		// the PHV field even on paths where the accesses are predicated
		// off; the exported expression accounts for the predicate itself.
		// Guard the element index so the predicated-off execution cannot
		// trap on an out-of-range index the branch was protecting against.
		c.pred = nil
		if guardValid && guard != nil && c.idx.kind != gConst {
			c.idx = b.arithNode("csel", false, c.idx.ty, c.idx, b.cnst(c.idx.ty, 0), guard)
		}
	case guardValid:
		c.pred = guard
	default:
		c.pred = nil
	}
	return c.synthesize(b, maxOps)
}
