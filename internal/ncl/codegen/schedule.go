package codegen

import (
	"fmt"
	"sort"

	"ncl/internal/ncl/types"
	"ncl/internal/pisa"
)

// unit is one schedulable entity: a VLIW op, a table application, a
// stateful cluster, or a final writeback mov.
type unit struct {
	kind    unitKind
	node    *gval        // arith node (uVLIW)
	lookup  *tableLookup // uTable
	cluster *cluster     // uSALU
	// uFinal: write src into dstField at the end.
	src      *gval
	dstField pisa.FieldRef
	// scheduling
	deps     []*unit
	minSlots []*unit // units we must not precede (same-slot allowed)
	slot     int
}

type unitKind int

const (
	uVLIW unitKind = iota
	uTable
	uSALU
	uFinal
)

// scheduler assigns units to absolute slots (pass*Stages + stage) under
// the target's resource model. Register arrays and tables are pinned to a
// stage (mod Stages) program-wide via the shared pin map.
type scheduler struct {
	target pisa.TargetConfig
	pins   map[string]int // resource name -> stage

	vliwCount  map[int]int
	saluCount  map[int]int
	tableCount map[int]int
	resPass    map[string]map[int]bool // resource -> pass set used
	maxSlot    int
}

func newScheduler(target pisa.TargetConfig, pins map[string]int) *scheduler {
	return &scheduler{
		target:     target,
		pins:       pins,
		vliwCount:  map[int]int{},
		saluCount:  map[int]int{},
		tableCount: map[int]int{},
		resPass:    map[string]map[int]bool{},
	}
}

func (s *scheduler) slotLimit() int { return (s.target.MaxRecirc + 1) * s.target.Stages }

// place assigns a slot to u. Units must be placed in dependency order.
func (s *scheduler) place(u *unit) error {
	earliest := 0
	for _, d := range u.deps {
		if d.slot+1 > earliest {
			earliest = d.slot + 1
		}
	}
	for _, d := range u.minSlots {
		if d.slot > earliest {
			earliest = d.slot
		}
	}
	switch u.kind {
	case uVLIW, uFinal:
		for slot := earliest; slot < s.slotLimit(); slot++ {
			if s.vliwCount[slot] < s.target.ActionsPerStage {
				s.vliwCount[slot]++
				u.slot = slot
				s.note(slot)
				return nil
			}
		}
		return fmt.Errorf("kernel does not fit the pipeline: a value is first available at slot %d but only %d stage slots exist across %d passes",
			earliest, s.slotLimit(), s.target.MaxRecirc+1)
	case uTable:
		return s.placePinned(u, "table:"+u.lookup.g.Name, earliest, s.tableCount, s.target.TablesPerStage)
	case uSALU:
		return s.placePinned(u, "reg:"+u.cluster.reg.name, earliest, s.saluCount, s.target.SALUsPerStage)
	}
	return fmt.Errorf("unknown unit kind")
}

// placePinned places a unit whose resource is pinned to one stage
// (mod Stages) and usable once per pass.
func (s *scheduler) placePinned(u *unit, res string, earliest int, count map[int]int, cap int) error {
	stages := s.target.Stages
	passes := s.resPass[res]
	if passes == nil {
		passes = map[int]bool{}
		s.resPass[res] = passes
	}
	if pin, ok := s.pins[res]; ok {
		for slot := earliest; slot < s.slotLimit(); slot++ {
			if slot%stages != pin {
				continue
			}
			if passes[slot/stages] {
				continue // one access per pass
			}
			if count[slot] >= cap {
				continue
			}
			count[slot]++
			passes[slot/stages] = true
			u.slot = slot
			s.note(slot)
			return nil
		}
		return fmt.Errorf("resource %s (pinned to stage %d) has no free pass within the recirculation budget", res, pin)
	}
	for slot := earliest; slot < s.slotLimit(); slot++ {
		if passes[slot/stages] {
			continue
		}
		if count[slot] >= cap {
			continue
		}
		count[slot]++
		passes[slot/stages] = true
		s.pins[res] = slot % stages
		u.slot = slot
		s.note(slot)
		return nil
	}
	return fmt.Errorf("no capacity to place %s within the recirculation budget", res)
}

func (s *scheduler) note(slot int) {
	if slot > s.maxSlot {
		s.maxSlot = slot
	}
}

// buildKernel lowers a scheduled flat kernel into a pisa.Kernel.
type kernelBuilder struct {
	fk      *flatKernel
	fields  []pisa.Field
	fieldOf map[*gval]pisa.FieldRef
	units   []*unit
	unitOf  map[*gval]*unit // producer unit per materialized node
}

// newField allocates a PHV field.
func (kb *kernelBuilder) newField(name string, ty *types.Type) pisa.FieldRef {
	kb.fields = append(kb.fields, pisa.Field{Name: name, Bits: ty.BitWidth(), Signed: ty.Kind == types.Int && ty.Signed})
	return pisa.FieldRef(len(kb.fields) - 1)
}

// operandOf converts a node into a pisa operand (const or field).
func (kb *kernelBuilder) operandOf(n *gval) pisa.Operand {
	if n.kind == gConst {
		return pisa.ConstOperand(n.cval)
	}
	f, ok := kb.fieldOf[n]
	if !ok {
		panic(fmt.Sprintf("codegen: node %d has no field", n.id))
	}
	return pisa.FieldOperand(f)
}

// sortUnitsTopological orders units so dependencies come first.
func sortUnitsTopological(units []*unit) ([]*unit, error) {
	state := map[*unit]int{}
	var out []*unit
	var visit func(u *unit) error
	visit = func(u *unit) error {
		switch state[u] {
		case 1:
			return fmt.Errorf("codegen: cyclic unit dependency")
		case 2:
			return nil
		}
		state[u] = 1
		for _, d := range u.deps {
			if err := visit(d); err != nil {
				return err
			}
		}
		// minSlot constraints are not dependencies for ordering purposes,
		// but placing readers first keeps their slots known; they are
		// added as deps during construction where required.
		state[u] = 2
		out = append(out, u)
		return nil
	}
	// Deterministic iteration.
	us := make([]*unit, len(units))
	copy(us, units)
	sort.SliceStable(us, func(i, j int) bool { return unitOrder(us[i]) < unitOrder(us[j]) })
	for _, u := range us {
		if err := visit(u); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func unitOrder(u *unit) int {
	switch u.kind {
	case uVLIW:
		return u.node.id
	case uTable:
		return u.lookup.key.id
	case uSALU:
		return u.cluster.idx.id
	case uFinal:
		return 1 << 30
	}
	return 0
}
