package codegen

import (
	"fmt"

	"ncl/internal/ncl/types"
	"ncl/internal/pisa"
)

// cluster is one stateful-ALU access: all loads/stores to one register
// array (or lane) at one index value, fused into a micro-program.
type cluster struct {
	reg    *regState
	idx    *gval
	accs   []*access
	pred   *gval // OR of access predicates; nil when the SALU runs unconditionally
	export *gval // the single value escaping to the PHV (nil if none)

	// prev chains clusters on the same array in program order; the
	// scheduler keeps the chain in distinct, ordered pipeline passes.
	prev *cluster

	// Analysis results from assignExports.
	owner    map[*gval]*cluster // load node -> owning cluster
	internal map[*gval]bool     // nodes computed inside the micro-program

	// After micro synthesis:
	prog []pisa.MicroOp
	// PHV operand dependencies (gvals read by the micro program or index).
	deps []*gval
}

// partitionState groups every register's accesses into clusters, applying
// lane partitioning where the affine pattern allows. It mutates
// fk.regs/regByName to the final register set (lanes replace split
// originals) and returns the clusters.
//
// Soundness: two accesses may only fuse into one cluster when they share
// the same index SSA value, and a cluster may only be hoisted past other
// accesses to the same array when the indices provably never alias (lane
// partitioning guarantees disjointness by construction). Otherwise
// clusters are chained in program order across recirculation passes,
// which preserves sequential semantics even under dynamic aliasing.
func partitionState(fk *flatKernel) ([]*cluster, error) {
	var clusters []*cluster
	finalRegs := []*regState{}
	for _, rs := range fk.regs {
		if len(rs.accesses) == 0 {
			finalRegs = append(finalRegs, rs)
			continue
		}
		runs := groupRuns(rs.accesses)
		if len(runs) == 1 {
			finalRegs = append(finalRegs, rs)
			clusters = append(clusters, &cluster{reg: rs, idx: runs[0][0].idx, accs: runs[0]})
			continue
		}
		// Static scatter: when every index is a compile-time constant,
		// each distinct slot becomes its own single-element lane —
		// provably disjoint, no recirculation needed.
		if lanes, ok := tryConstLanes(fk.builder, rs, runs); ok {
			for _, lane := range lanes.ordered {
				finalRegs = append(finalRegs, lane)
				clusters = append(clusters, &cluster{reg: lane, idx: lane.accesses[0].idx, accs: lane.accesses})
			}
			continue
		}
		// Affine lane partitioning merges runs with the same constant
		// offset: lanes are disjoint arrays, so cross-lane order is free.
		if lanes, ok := tryLanes(rs, runs); ok {
			for _, lane := range lanes.ordered {
				finalRegs = append(finalRegs, lane)
				clusters = append(clusters, &cluster{reg: lane, idx: lane.accesses[0].idx, accs: lane.accesses})
			}
			continue
		}
		// Fallback: one cluster per consecutive run, chained in program
		// order; the scheduler places each in its own pipeline pass.
		finalRegs = append(finalRegs, rs)
		var prev *cluster
		for _, g := range runs {
			c := &cluster{reg: rs, idx: g[0].idx, accs: g, prev: prev}
			clusters = append(clusters, c)
			prev = c
		}
	}
	fk.regs = finalRegs
	fk.regByName = map[string]*regState{}
	for _, rs := range finalRegs {
		fk.regByName[rs.name] = rs
	}
	return clusters, nil
}

// groupRuns splits accesses into maximal consecutive runs sharing the same
// index node. Only consecutive merging is sound in general: accesses with
// different index expressions may alias at runtime, so program order
// across runs must be preserved.
func groupRuns(accs []*access) [][]*access {
	var runs [][]*access
	for _, a := range accs {
		if n := len(runs); n > 0 && runs[n-1][0].idx == a.idx {
			runs[n-1] = append(runs[n-1], a)
			continue
		}
		runs = append(runs, []*access{a})
	}
	return runs
}

type laneSet struct {
	ordered []*regState
}

// tryConstLanes splits an array whose accesses all use compile-time
// constant indices into one single-element lane per distinct slot; runs
// hitting the same slot merge in program order.
func tryConstLanes(b *builder, rs *regState, runs [][]*access) (*laneSet, bool) {
	if rs.ctrl {
		return nil, false
	}
	for _, g := range runs {
		if g[0].idx.kind != gConst {
			return nil, false
		}
	}
	ls := &laneSet{}
	laneByIdx := map[uint64]*regState{}
	for _, g := range runs {
		c := g[0].idx.cval
		if c >= uint64(rs.elems) {
			return nil, false // out of range: leave for the runtime trap
		}
		lane, ok := laneByIdx[c]
		if !ok {
			lane = &regState{
				g:      rs.g,
				name:   fmt.Sprintf("%s$%d", rs.name, c),
				elems:  1,
				elemTy: rs.elemTy,
				ctrl:   rs.ctrl,
			}
			if int(c) < len(rs.init) {
				lane.init = []uint64{rs.init[c]}
			}
			laneByIdx[c] = lane
			ls.ordered = append(ls.ordered, lane)
		}
		lane.accesses = append(lane.accesses, g...)
	}
	// Rewrite every access index to the lane-local slot 0 (one shared
	// node, preserving the same-index-per-cluster invariant).
	for _, lane := range ls.ordered {
		zero := b.cnst(lane.accesses[0].idx.ty, 0)
		for _, a := range lane.accesses {
			a.idx = zero
		}
	}
	return ls, true
}

// tryLanes attempts the affine decomposition: every run's index must be
// dyn*S + c with one shared dyn and S, and offsets c < S. Runs sharing an
// offset merge into the same lane (lanes are disjoint, so reordering
// across lanes cannot alias). On success the array is split into
// per-offset lanes of ceil(elems/S) entries, with initializer values
// redistributed.
func tryLanes(rs *regState, runs [][]*access) (*laneSet, bool) {
	if rs.ctrl {
		// Lane-splitting a _ctrl_ array would hide its layout from the
		// control plane; fall back to recirculation.
		return nil, false
	}
	var dyn *gval
	var S uint64
	offsets := make([]uint64, 0, len(runs))
	for _, g := range runs {
		d, ok := decompose(g[0].idx)
		if !ok {
			return nil, false
		}
		if dyn == nil {
			dyn, S = d.dyn, d.S
		} else if d.dyn != dyn || d.S != S {
			return nil, false
		}
		offsets = append(offsets, d.c)
	}
	if S == 0 {
		return nil, false
	}
	for _, c := range offsets {
		if c >= S {
			return nil, false
		}
	}
	laneElems := (rs.elems + int(S) - 1) / int(S)
	if laneElems == 0 {
		laneElems = 1
	}
	ls := &laneSet{}
	laneByOffset := map[uint64]*regState{}
	for gi, g := range runs {
		c := offsets[gi]
		lane, ok := laneByOffset[c]
		if !ok {
			lane = &regState{
				g:      rs.g,
				name:   fmt.Sprintf("%s$%d", rs.name, c),
				elems:  laneElems,
				elemTy: rs.elemTy,
				ctrl:   rs.ctrl,
			}
			if len(rs.init) > 0 {
				lane.init = make([]uint64, laneElems)
				for j := 0; j < laneElems; j++ {
					src := j*int(S) + int(c)
					if src < len(rs.init) {
						lane.init[j] = rs.init[src]
					}
				}
			}
			laneByOffset[c] = lane
			ls.ordered = append(ls.ordered, lane)
		}
		// Rewrite access indices to the lane-local index (dyn).
		for _, a := range g {
			a.idx = dyn
		}
		lane.accesses = append(lane.accesses, g...)
	}
	return ls, true
}

type affine struct {
	dyn *gval
	S   uint64
	c   uint64
}

// decompose matches idx against dyn*S + c (also bare dyn*S, meaning c=0).
func decompose(idx *gval) (affine, bool) {
	if idx.kind == gArith && idx.op == "add" {
		a, b := idx.args[0], idx.args[1]
		if b.kind == gConst {
			if d, ok := mulDecompose(a); ok {
				return affine{d.dyn, d.S, b.cval}, true
			}
		}
		if a.kind == gConst {
			if d, ok := mulDecompose(b); ok {
				return affine{d.dyn, d.S, a.cval}, true
			}
		}
		return affine{}, false
	}
	if d, ok := mulDecompose(idx); ok {
		return d, true
	}
	return affine{}, false
}

func mulDecompose(v *gval) (affine, bool) {
	if v.kind == gArith && v.op == "mul" {
		a, b := v.args[0], v.args[1]
		if b.kind == gConst && b.cval > 0 {
			return affine{dyn: a, S: b.cval}, true
		}
		if a.kind == gConst && a.cval > 0 {
			return affine{dyn: b, S: a.cval}, true
		}
	}
	return affine{}, false
}

// isSlotted reports whether v already has a micro slot.
func isSlotted(slotOf map[*gval]pisa.MSlot, v *gval) bool {
	_, ok := slotOf[v]
	return ok
}

// simpleMicroOp reports whether op is a two-operand ALU op that can write
// straight into the register slot.
func simpleMicroOp(op string) bool {
	switch op {
	case "add", "sub", "mul", "div", "mod", "and", "or", "xor", "shl", "shr":
		return true
	}
	return false
}

// synthesize builds the stateful micro-program for the cluster: loads bind
// the running register value to temp slots, stores fold their value (and
// predicate) into select chains, and at most one internal value may be
// exported to the PHV. External values become PHV-field operands recorded
// in c.deps.
func (c *cluster) synthesize(b *builder, maxOps int) error {
	// Which nodes must be computed inside the micro-program? Everything on
	// a path from a cluster load to a store value/predicate.
	loadSet := map[*gval]bool{}
	for _, a := range c.accs {
		if a.kind == accLoad {
			loadSet[a.load] = true
		}
	}
	dependsOnLoad := map[*gval]bool{}
	var dep func(v *gval) bool
	dep = func(v *gval) bool {
		if loadSet[v] {
			return true
		}
		if d, ok := dependsOnLoad[v]; ok {
			return d
		}
		dependsOnLoad[v] = false // break cycles (none exist: DAG)
		d := false
		if v.kind == gArith {
			for _, a := range v.args {
				if dep(a) {
					d = true
				}
			}
		}
		dependsOnLoad[v] = d
		return d
	}

	var prog []pisa.MicroOp
	nextTmp := pisa.MTmp0
	slotOf := map[*gval]pisa.MSlot{}
	var freeTmps []pisa.MSlot
	var freshThisAccess []*gval // tmp-backed nodes allocated for the current access
	var depsSeen = map[*gval]bool{}
	addDep := func(v *gval) {
		if !depsSeen[v] && v.kind != gConst {
			depsSeen[v] = true
			c.deps = append(c.deps, v)
		}
	}

	allocTmp := func() (pisa.MSlot, error) {
		if n := len(freeTmps); n > 0 {
			t := freeTmps[n-1]
			freeTmps = freeTmps[:n-1]
			return t, nil
		}
		if nextTmp > pisa.MTmp3 {
			return 0, fmt.Errorf("stateful program on %s needs more than 4 temporaries; accumulate per-window values in a local and update the state once", c.reg.name)
		}
		t := nextTmp
		nextTmp++
		return t, nil
	}

	// operandFor translates a value into a micro operand; values not
	// depending on cluster loads become PHV operands (scheduled earlier).
	var emit func(v *gval) (pisa.MOperand, error)
	operandFor := func(v *gval) (pisa.MOperand, error) {
		if v.kind == gConst {
			return pisa.ImmOperand(v.cval), nil
		}
		if s, ok := slotOf[v]; ok {
			return pisa.SlotOperand(s), nil
		}
		if dep(v) {
			return emit(v)
		}
		addDep(v)
		// Field refs are patched at emission; reference by graph node.
		return pisa.MOperand{Kind: pisa.MFromField, Field: pisa.FieldRef(v.id)}, nil
	}
	emit = func(v *gval) (pisa.MOperand, error) {
		if s, ok := slotOf[v]; ok {
			return pisa.SlotOperand(s), nil
		}
		if v.kind != gArith {
			return pisa.MOperand{}, fmt.Errorf("stateful program on %s: unsupported internal node", c.reg.name)
		}
		// Inside the SALU every slot has the register's width; mixing
		// widths would diverge from the IR semantics.
		if v.ty.Kind != types.Invalid && v.ty.BitWidth() != c.reg.elemTy.BitWidth() && v.ty.Kind != types.Bool {
			return pisa.MOperand{}, fmt.Errorf("stateful program on %s mixes %d-bit values with the %d-bit register; keep per-element state updates width-uniform",
				c.reg.name, v.ty.BitWidth(), c.reg.elemTy.BitWidth())
		}
		t, err := allocTmp()
		if err != nil {
			return pisa.MOperand{}, err
		}
		freshThisAccess = append(freshThisAccess, v)
		mo := pisa.MicroOp{Dst: t, Op: v.op, Signed: v.signed}
		switch v.op {
		case "mov", "not":
			a, err := operandFor(v.args[0])
			if err != nil {
				return pisa.MOperand{}, err
			}
			mo.A = a
			if v.op == "not" {
				// not x == (x == 0)
				mo.Op = "eq"
				mo.B = pisa.ImmOperand(0)
			}
		case "csel":
			a, err := operandFor(v.args[0])
			if err != nil {
				return pisa.MOperand{}, err
			}
			d, err := operandFor(v.args[1])
			if err != nil {
				return pisa.MOperand{}, err
			}
			cc, err := operandFor(v.args[2])
			if err != nil {
				return pisa.MOperand{}, err
			}
			mo.Op, mo.A, mo.B, mo.C = "sel", a, d, cc
		case "hash":
			return pisa.MOperand{}, fmt.Errorf("stateful program on %s: hash cannot nest in a stateful op", c.reg.name)
		default:
			a, err := operandFor(v.args[0])
			if err != nil {
				return pisa.MOperand{}, err
			}
			bb, err := operandFor(v.args[1])
			if err != nil {
				return pisa.MOperand{}, err
			}
			mo.A, mo.B = a, bb
		}
		prog = append(prog, mo)
		slotOf[v] = t
		return pisa.SlotOperand(t), nil
	}

	// refs reports whether root's expression tree references n without
	// crossing out of the must-internal set (external nodes read the PHV,
	// not micro slots).
	var refs func(root, n *gval) bool
	refs = func(root, n *gval) bool {
		if root == nil {
			return false
		}
		if root == n {
			return true
		}
		if root.kind != gArith || !dep(root) {
			return false
		}
		for _, a := range root.args {
			if refs(a, n) {
				return true
			}
		}
		return false
	}
	// usedAfterStore reports whether node n is still needed after some
	// register write that follows access i: if so, aliasing n to MReg is
	// unsafe and it must be copied to a temporary.
	usedAfterStore := func(n *gval, i int) bool {
		storeSeen := false
		for j := i + 1; j < len(c.accs); j++ {
			a := c.accs[j]
			if storeSeen && a.kind == accStore && (refs(a.val, n) || refs(a.pred, n)) {
				return true
			}
			if a.kind == accStore {
				storeSeen = true
			}
		}
		if storeSeen && c.export != nil && refs(c.export, n) {
			return true
		}
		return false
	}

	// usedLaterAt reports whether node n is referenced by any access after
	// index i (store values/predicates) or by the export.
	usedLaterAt := func(n *gval, i int) bool {
		for j := i + 1; j < len(c.accs); j++ {
			a := c.accs[j]
			if a.kind == accStore && (refs(a.val, n) || refs(a.pred, n)) {
				return true
			}
		}
		return c.export != nil && refs(c.export, n)
	}

	// Walk accesses in program order; MReg carries the running value.
	for i, a := range c.accs {
		freshThisAccess = freshThisAccess[:0]
		switch a.kind {
		case accLoad:
			if usedAfterStore(a.load, i) {
				t, err := allocTmp()
				if err != nil {
					return err
				}
				prog = append(prog, pisa.MicroOp{Op: "mov", Dst: t, A: pisa.SlotOperand(pisa.MReg)})
				slotOf[a.load] = t
			} else {
				// The load's value is exactly the running register value
				// until the next write; alias it.
				slotOf[a.load] = pisa.MReg
			}
		case accStore:
			unconditional := a.pred == nil || a.pred == c.pred
			// Peephole: an unconditional store of a fresh internal binop
			// computes straight into the register slot.
			if unconditional {
				if v := a.val; v.kind == gArith && dep(v) && !isSlotted(slotOf, v) && !usedAfterStore(v, i) && simpleMicroOp(v.op) {
					mo := pisa.MicroOp{Op: v.op, Dst: pisa.MReg, Signed: v.signed}
					av, err := operandFor(v.args[0])
					if err != nil {
						return err
					}
					bv, err := operandFor(v.args[1])
					if err != nil {
						return err
					}
					mo.A, mo.B = av, bv
					prog = append(prog, mo)
					// The value now lives in the register slot; later uses
					// (before any further write) may read it there.
					slotOf[v] = pisa.MReg
					continue
				}
			}
			vo, err := operandFor(a.val)
			if err != nil {
				return err
			}
			if unconditional {
				prog = append(prog, pisa.MicroOp{Op: "mov", Dst: pisa.MReg, A: vo})
			} else {
				po, err := operandFor(a.pred)
				if err != nil {
					return err
				}
				prog = append(prog, pisa.MicroOp{
					Op: "sel", Dst: pisa.MReg,
					A: vo, B: pisa.SlotOperand(pisa.MReg), C: po,
				})
			}
		}
		// Return temporaries whose values are dead after this access so
		// long micro-programs reuse the four slots.
		for _, v := range freshThisAccess {
			if s, ok := slotOf[v]; ok && s >= pisa.MTmp0 && !usedLaterAt(v, i) {
				delete(slotOf, v)
				freeTmps = append(freeTmps, s)
			}
		}
	}

	// Export: the unique internal value used outside the cluster.
	if c.export != nil {
		s, ok := slotOf[c.export]
		if !ok {
			// The export is the running register value (e.g. a load whose
			// slot is MReg-at-that-time); loads always get slots above, so
			// this means an absorbed arith node: emit it.
			op, err := emit(c.export)
			if err != nil {
				return err
			}
			prog = append(prog, pisa.MicroOp{Op: "mov", Dst: pisa.MOut, A: op})
		} else {
			prog = append(prog, pisa.MicroOp{Op: "mov", Dst: pisa.MOut, A: pisa.SlotOperand(s)})
		}
	}

	if len(prog) > maxOps {
		return fmt.Errorf("stateful program on %s needs %d micro-ops (target allows %d); simplify the per-element state update",
			c.reg.name, len(prog), maxOps)
	}
	c.prog = prog
	addDep(c.idx)
	if c.pred != nil {
		addDep(c.pred)
	}
	return nil
}
