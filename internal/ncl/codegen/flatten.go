// Package codegen translates optimized, acyclic NCL IR into loadable PISA
// programs (and P4-style text through package p4). It performs the
// architecture-specific transformations §5 of the paper describes:
//
//   - if-conversion: the CFG collapses into a predicated value graph;
//     φs become conditional selects over edge conditions;
//   - window data becomes static PHV fields, with store ordering encoded
//     as select chains (SSA versions);
//   - array lane partitioning: a register array whose unrolled accesses
//     follow an affine pattern dyn*S + c is split into per-offset lanes so
//     each lane sees one stateful access per pass (the NetCache Read0/
//     Read1 pattern, synthesized automatically);
//   - stateful clustering: all accesses to one array at one index fuse
//     into a single bounded stateful-ALU micro-program (RegisterAction
//     analogue), with at most one value exported to the PHV;
//   - Bloom filters expand into per-hash lanes with hash units;
//   - list scheduling onto stages under the target's resource model,
//     spilling to recirculation passes when an array or table is needed
//     more than once per pass.
package codegen

import (
	"fmt"

	"ncl/internal/ncl/ir"
	"ncl/internal/ncl/token"
	"ncl/internal/ncl/types"
	"ncl/internal/pisa"
)

// gkind classifies flat-graph nodes.
type gkind int

const (
	gConst     gkind = iota
	gArith           // op over args (includes mov/not/csel/hash)
	gParamElem       // initial value of a window data element
	gMeta            // window/location metadata field
	gTableHit        // table lookup hit flag
	gTableVal        // table lookup value
	gSALUOut         // stateful cluster export
)

// gval is one node of the flattened, predicated value graph.
type gval struct {
	id   int
	kind gkind
	ty   *types.Type

	op     string // gArith: mov,add,...,eq,...,csel,not,hash
	signed bool
	args   []*gval

	cval uint64 // gConst

	param *ir.Param // gParamElem
	elem  int

	meta string // gMeta: field name ($seq, $from, ..., $loc, _win_ names)

	lookup *tableLookup // gTableHit/gTableVal

	cluster *cluster // gSALUOut

	hashSeed, hashBits int
}

// tableLookup is one deduplicated Map lookup.
type tableLookup struct {
	g   *ir.Global
	key *gval
	hit *gval
	val *gval

	hitField, valField pisa.FieldRef // assigned at emission
}

// accessKind classifies stateful accesses.
type accessKind int

const (
	accLoad accessKind = iota
	accStore
)

// access is one register-array access in flat program order.
type access struct {
	kind accessKind
	idx  *gval
	val  *gval // store value
	pred *gval // nil = unconditional
	load *gval // node representing the loaded value (accLoad)
}

// regState tracks all accesses to one array.
type regState struct {
	g        *ir.Global
	name     string // possibly a lane name g$c or bloom lane g#h
	elems    int
	elemTy   *types.Type
	init     []uint64
	ctrl     bool
	accesses []*access
}

// flatKernel is the fully flattened kernel before scheduling.
type flatKernel struct {
	f       *ir.Func
	builder *builder

	// Window data versions: final values to deparse, per param per elem.
	paramInit  map[*ir.Param][]*gval
	paramFinal map[*ir.Param][]*gval

	fwd      *gval // forwarding decision value (0..3)
	fwdLabel *gval // label index+1, 0 = none

	regs      []*regState
	regByName map[string]*regState

	lookups []*tableLookup
}

// builder hash-conses the value graph.
type builder struct {
	nodes  []*gval
	arith  map[string]*gval
	consts map[string]*gval
	params map[*ir.Param][]*gval
	metas  map[string]*gval
}

func newBuilder() *builder {
	return &builder{
		arith:  map[string]*gval{},
		consts: map[string]*gval{},
		params: map[*ir.Param][]*gval{},
		metas:  map[string]*gval{},
	}
}

func (b *builder) add(v *gval) *gval {
	v.id = len(b.nodes)
	b.nodes = append(b.nodes, v)
	return v
}

func (b *builder) cnst(ty *types.Type, v uint64) *gval {
	v = ty.Normalize(v)
	key := fmt.Sprintf("%s|%d", ty, v)
	if n, ok := b.consts[key]; ok {
		return n
	}
	n := b.add(&gval{kind: gConst, ty: ty, cval: v})
	b.consts[key] = n
	return n
}

func (b *builder) boolConst(v bool) *gval {
	if v {
		return b.cnst(types.BoolType, 1)
	}
	return b.cnst(types.BoolType, 0)
}

// arithNode hash-conses an arithmetic node; constant operands fold.
func (b *builder) arithNode(op string, signed bool, ty *types.Type, args ...*gval) *gval {
	// Fold when all args are constants.
	allConst := true
	for _, a := range args {
		if a.kind != gConst {
			allConst = false
			break
		}
	}
	if allConst {
		if v, ok := foldArith(op, signed, ty, args); ok {
			return b.cnst(ty, v)
		}
	}
	// Identities for csel.
	if op == "csel" {
		if args[2].kind == gConst {
			if args[2].cval != 0 {
				return args[0]
			}
			return args[1]
		}
		if args[0] == args[1] {
			return args[0]
		}
	}
	key := fmt.Sprintf("%s|%v|%s", op, signed, ty)
	for _, a := range args {
		key += fmt.Sprintf("|%d", a.id)
	}
	if n, ok := b.arith[key]; ok {
		return n
	}
	n := b.add(&gval{kind: gArith, ty: ty, op: op, signed: signed, args: args})
	b.arith[key] = n
	return n
}

// hashNode is a hash-unit application for Bloom lanes.
func (b *builder) hashNode(key *gval, seed, bits int) *gval {
	hk := fmt.Sprintf("hash|%d|%d|%d", key.id, seed, bits)
	if n, ok := b.arith[hk]; ok {
		return n
	}
	n := b.add(&gval{kind: gArith, ty: types.U32, op: "hash", args: []*gval{key}, hashSeed: seed, hashBits: bits})
	b.arith[hk] = n
	return n
}

func (b *builder) paramElem(p *ir.Param, elem int) *gval {
	els := b.params[p]
	for len(els) <= elem {
		els = append(els, nil)
	}
	if els[elem] == nil {
		els[elem] = b.add(&gval{kind: gParamElem, ty: p.ElemType(), param: p, elem: elem})
	}
	b.params[p] = els
	return els[elem]
}

func (b *builder) metaNode(name string, ty *types.Type) *gval {
	if n, ok := b.metas[name]; ok {
		return n
	}
	n := b.add(&gval{kind: gMeta, ty: ty, meta: name})
	b.metas[name] = n
	return n
}

// Boolean helpers with short-circuit constant folding.
func (b *builder) and(x, y *gval) *gval {
	if x.kind == gConst {
		if x.cval == 0 {
			return x
		}
		return y
	}
	if y.kind == gConst {
		if y.cval == 0 {
			return y
		}
		return x
	}
	if x == y {
		return x
	}
	return b.arithNode("and", false, types.BoolType, x, y)
}

func (b *builder) or(x, y *gval) *gval {
	if x.kind == gConst {
		if x.cval != 0 {
			return x
		}
		return y
	}
	if y.kind == gConst {
		if y.cval != 0 {
			return y
		}
		return x
	}
	if x == y {
		return x
	}
	return b.arithNode("or", false, types.BoolType, x, y)
}

func (b *builder) not(x *gval) *gval {
	if x.kind == gConst {
		return b.boolConst(x.cval == 0)
	}
	return b.arithNode("not", false, types.BoolType, x)
}

// foldArith evaluates an op over constant nodes.
func foldArith(op string, signed bool, ty *types.Type, args []*gval) (uint64, bool) {
	get := func(i int) uint64 { return args[i].cval }
	switch op {
	case "mov":
		return get(0), true
	case "not":
		if get(0) == 0 {
			return 1, true
		}
		return 0, true
	case "csel":
		if get(2) != 0 {
			return get(0), true
		}
		return get(1), true
	case "hash":
		return 0, false // hash of const could fold but keep runtime for realism
	}
	kind, cmp := opToken(op)
	if cmp {
		at := args[0].ty
		x, y := get(0), get(1)
		sgn := signed || (at.Kind == types.Int && at.Signed)
		var res bool
		if sgn {
			sx, sy := int64(x), int64(y)
			switch op {
			case "eq":
				res = sx == sy
			case "ne":
				res = sx != sy
			case "lt":
				res = sx < sy
			case "gt":
				res = sx > sy
			case "le":
				res = sx <= sy
			case "ge":
				res = sx >= sy
			}
		} else {
			switch op {
			case "eq":
				res = x == y
			case "ne":
				res = x != y
			case "lt":
				res = x < y
			case "gt":
				res = x > y
			case "le":
				res = x <= y
			case "ge":
				res = x >= y
			}
		}
		if res {
			return 1, true
		}
		return 0, true
	}
	if kind == token.ILLEGAL {
		return 0, false
	}
	return evalConstArith(kind, get(0), get(1), ty)
}

func opToken(op string) (token.Kind, bool) {
	switch op {
	case "add":
		return token.ADD, false
	case "sub":
		return token.SUB, false
	case "mul":
		return token.MUL, false
	case "div":
		return token.DIV, false
	case "mod":
		return token.MOD, false
	case "and":
		return token.AND, false
	case "or":
		return token.OR, false
	case "xor":
		return token.XOR, false
	case "shl":
		return token.SHL, false
	case "shr":
		return token.SHR, false
	case "eq", "ne", "lt", "gt", "le", "ge":
		return token.ILLEGAL, true
	}
	return token.ILLEGAL, false
}
