package codegen

import (
	"math/rand"
	"strings"
	"testing"

	"ncl/internal/ncl/interp"
	"ncl/internal/pisa"
)

// TestSketchCompilesAndCounts: the ncl::CountMin extension end to end —
// per-row lanes with hash units, point estimates as min-over-rows.
func TestSketchCompilesAndCounts(t *testing.T) {
	src := `
_net_ ncl::CountMin<512, 4> cm;
_net_ _out_ void k(uint64_t key, unsigned amount, unsigned *est) {
    cm.add(key, amount);
    est[0] = cm.estimate(key);
}
`
	m := buildModule(t, src, 1)
	target := pisa.DefaultTarget()
	p := compileProgram(t, m, target)

	lanes := 0
	for _, r := range p.Registers {
		if strings.HasPrefix(r.Name, "cm@") {
			lanes++
			if r.Elems != 512 || r.Bits != 32 {
				t.Errorf("lane shape wrong: %+v", r)
			}
		}
	}
	if lanes != 4 {
		t.Fatalf("want 4 sketch rows, got %d", lanes)
	}

	sw := loadSwitch(t, p, target)
	f := m.FuncByName("k")
	run := func(key, amount uint64) uint64 {
		win := interp.NewWindow(f)
		win.Data[0][0] = key
		win.Data[1][0] = amount
		if _, err := sw.ExecWindow(1, win); err != nil {
			t.Fatal(err)
		}
		return win.Data[2][0]
	}
	if got := run(7, 5); got != 5 {
		t.Errorf("first add: estimate = %d, want 5", got)
	}
	if got := run(7, 3); got != 8 {
		t.Errorf("second add: estimate = %d, want 8", got)
	}
	if got := run(9, 1); got != 1 {
		t.Errorf("fresh key: estimate = %d, want 1 (low collision odds in 512x4)", got)
	}
}

// TestDifferentialSketch: the interpreter and the pipeline agree on
// sketch contents and estimates over random workloads.
func TestDifferentialSketch(t *testing.T) {
	src := `
_net_ ncl::CountMin<256, 3> cm;
_net_ _out_ void k(uint64_t key, unsigned amount, unsigned *est, bool query) {
    if (!query) cm.add(key, amount);
    est[0] = cm.estimate(key);
}
`
	m := buildModule(t, src, 1)
	target := pisa.DefaultTarget()
	p := compileProgram(t, m, target)
	sw := loadSwitch(t, p, target)
	f := m.FuncByName("k")
	ist := interp.NewState(m)

	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 400; i++ {
		key := uint64(rng.Intn(64))
		amt := uint64(rng.Intn(10))
		query := uint64(rng.Intn(2))
		wi := interp.NewWindow(f)
		wp := interp.NewWindow(f)
		wi.Data[0][0], wp.Data[0][0] = key, key
		wi.Data[1][0], wp.Data[1][0] = amt, amt
		wi.Data[3][0], wp.Data[3][0] = query, query
		if _, err := interp.Exec(f, ist, wi); err != nil {
			t.Fatal(err)
		}
		if _, err := sw.ExecWindow(1, wp); err != nil {
			t.Fatal(err)
		}
		if wi.Data[2][0] != wp.Data[2][0] {
			t.Fatalf("step %d key %d: estimate diverged: interp %d vs pisa %d",
				i, key, wi.Data[2][0], wp.Data[2][0])
		}
	}
}

// TestSketchEstimateNeverUndercounts: the count-min property (estimates
// are upper bounds of true counts) holds through the compiled pipeline.
func TestSketchEstimateNeverUndercounts(t *testing.T) {
	src := `
_net_ ncl::CountMin<128, 3> cm;
_net_ _out_ void k(uint64_t key, unsigned *est) {
    cm.add(key, 1);
    est[0] = cm.estimate(key);
}
`
	m := buildModule(t, src, 1)
	target := pisa.DefaultTarget()
	p := compileProgram(t, m, target)
	sw := loadSwitch(t, p, target)
	f := m.FuncByName("k")

	rng := rand.New(rand.NewSource(17))
	truth := map[uint64]uint64{}
	for i := 0; i < 500; i++ {
		key := uint64(rng.Intn(300)) // heavy collisions in a 128-col sketch
		truth[key]++
		win := interp.NewWindow(f)
		win.Data[0][0] = key
		if _, err := sw.ExecWindow(1, win); err != nil {
			t.Fatal(err)
		}
		if win.Data[1][0] < truth[key] {
			t.Fatalf("count-min undercounted key %d: estimate %d < true %d",
				key, win.Data[1][0], truth[key])
		}
	}
}
