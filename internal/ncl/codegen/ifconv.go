package codegen

import (
	"fmt"

	"ncl/internal/ncl/ir"
	"ncl/internal/ncl/sema"
	"ncl/internal/ncl/token"
	"ncl/internal/ncl/types"
)

func evalConstArith(kind token.Kind, x, y uint64, ty *types.Type) (uint64, bool) {
	if (kind == token.DIV || kind == token.MOD) && y == 0 {
		// Runtime semantics: division by zero yields zero everywhere.
		return 0, true
	}
	return sema.EvalArith(kind, x, y, ty)
}

// irOpName maps IR binop/cmp kinds to flat-op names.
func irOpName(k token.Kind) (string, bool) {
	switch k {
	case token.ADD:
		return "add", false
	case token.SUB:
		return "sub", false
	case token.MUL:
		return "mul", false
	case token.DIV:
		return "div", false
	case token.MOD:
		return "mod", false
	case token.AND:
		return "and", false
	case token.OR:
		return "or", false
	case token.XOR:
		return "xor", false
	case token.SHL:
		return "shl", false
	case token.SHR:
		return "shr", false
	case token.EQ:
		return "eq", true
	case token.NE:
		return "ne", true
	case token.LT:
		return "lt", true
	case token.GT:
		return "gt", true
	case token.LE:
		return "le", true
	case token.GE:
		return "ge", true
	}
	return "", false
}

// cfgEdge identifies one CFG edge.
type cfgEdge struct{ from, to *ir.Block }

// labelInterner assigns stable program-wide numbers to _pass labels.
type labelInterner struct {
	Labels []string
}

// Intern returns the 1-based index of label, adding it if new.
func (li *labelInterner) Intern(label string) uint64 {
	for i, l := range li.Labels {
		if l == label {
			return uint64(i + 1)
		}
	}
	li.Labels = append(li.Labels, label)
	return uint64(len(li.Labels))
}

// flatten if-converts one kernel into a flatKernel.
func flatten(f *ir.Func, winFields []ir.WinField, labels *labelInterner) (*flatKernel, error) {
	b := newBuilder()
	fk := &flatKernel{
		f:          f,
		builder:    b,
		paramInit:  map[*ir.Param][]*gval{},
		paramFinal: map[*ir.Param][]*gval{},
		regByName:  map[string]*regState{},
	}
	// Initial window data versions.
	for _, p := range f.WindowSig() {
		n := p.Elems(f.WindowLen)
		init := make([]*gval, n)
		for i := 0; i < n; i++ {
			init[i] = b.paramElem(p, i)
		}
		fk.paramInit[p] = init
		final := make([]*gval, n)
		copy(final, init)
		fk.paramFinal[p] = final
	}
	fk.fwd = b.cnst(types.U32, 0)      // default: pass
	fk.fwdLabel = b.cnst(types.U32, 0) // no label

	order, err := ir.TopoOrder(f)
	if err != nil {
		return nil, err
	}

	env := map[*ir.Instr]*gval{}
	val := func(v ir.Value) (*gval, error) {
		switch v := v.(type) {
		case *ir.Const:
			return b.cnst(v.Ty, v.Val), nil
		case *ir.Instr:
			g, ok := env[v]
			if !ok {
				return nil, fmt.Errorf("codegen: unflattened value %s", v.Name())
			}
			return g, nil
		}
		return nil, fmt.Errorf("codegen: raw parameter in value position")
	}

	// Block and edge conditions.
	blockCond := map[*ir.Block]*gval{}
	edgeCond := map[cfgEdge]*gval{}
	accumEdge := func(e cfgEdge, c *gval) {
		if old, ok := edgeCond[e]; ok {
			edgeCond[e] = b.or(old, c)
			return
		}
		edgeCond[e] = c
	}
	blockCond[f.Entry()] = b.boolConst(true)

	// Per-param mutable version state during the walk.
	version := map[*ir.Param][]*gval{}
	for p, init := range fk.paramInit {
		v := make([]*gval, len(init))
		copy(v, init)
		version[p] = v
	}

	// Deduplicated table lookups: by (global, key node).
	lookupFor := func(g *ir.Global, key *gval) *tableLookup {
		for _, lk := range fk.lookups {
			if lk.g == g && lk.key == key {
				return lk
			}
		}
		lk := &tableLookup{g: g, key: key}
		lk.hit = b.add(&gval{kind: gTableHit, ty: types.BoolType, lookup: lk})
		lk.val = b.add(&gval{kind: gTableVal, ty: g.Type.Val, lookup: lk})
		fk.lookups = append(fk.lookups, lk)
		return lk
	}

	regFor := func(g *ir.Global) *regState {
		if rs, ok := fk.regByName[g.Name]; ok {
			return rs
		}
		rs := &regState{g: g, name: g.Name, elems: g.ElemCount(), elemTy: g.ElemType(), init: g.Init, ctrl: g.Ctrl}
		fk.regByName[g.Name] = rs
		fk.regs = append(fk.regs, rs)
		return rs
	}
	sketchLane := func(g *ir.Global, r int) *regState {
		name := fmt.Sprintf("%s@%d", g.Name, r)
		if rs, ok := fk.regByName[name]; ok {
			return rs
		}
		rs := &regState{g: g, name: name, elems: g.Type.Bits, elemTy: types.U32, ctrl: false}
		fk.regByName[name] = rs
		fk.regs = append(fk.regs, rs)
		return rs
	}
	bloomLane := func(g *ir.Global, h int) *regState {
		name := fmt.Sprintf("%s#%d", g.Name, h)
		if rs, ok := fk.regByName[name]; ok {
			return rs
		}
		rs := &regState{g: g, name: name, elems: g.Type.Bits, elemTy: types.U8, ctrl: false}
		fk.regByName[name] = rs
		fk.regs = append(fk.regs, rs)
		return rs
	}

	type ctrlKeyT struct {
		rs  *regState
		idx *gval
	}
	ctrlLoads := map[ctrlKeyT]*gval{}
	type ctrlKey = ctrlKeyT

	predOf := func(blk *ir.Block) *gval {
		p := blockCond[blk]
		if p.kind == gConst && p.cval != 0 {
			return nil // unconditional
		}
		return p
	}

	for _, blk := range order {
		// Compute block condition from incoming edges (entry preset).
		if _, ok := blockCond[blk]; !ok {
			cond := b.boolConst(false)
			for _, p := range blk.Preds {
				ec, ok := edgeCond[cfgEdge{p, blk}]
				if !ok {
					return nil, fmt.Errorf("codegen: missing edge condition %s->%s", p.Name, blk.Name)
				}
				cond = b.or(cond, ec)
			}
			blockCond[blk] = cond
		}
		bc := blockCond[blk]

		for _, in := range blk.Instrs {
			switch in.Op {
			case ir.Phi:
				// φ → select chain over incoming edge conditions.
				if len(in.Args) == 0 {
					return nil, fmt.Errorf("codegen: empty φ")
				}
				res, err := val(in.Args[len(in.Args)-1])
				if err != nil {
					return nil, err
				}
				for i := len(in.Args) - 2; i >= 0; i-- {
					av, err := val(in.Args[i])
					if err != nil {
						return nil, err
					}
					ec := edgeCond[cfgEdge{blk.Preds[i], blk}]
					res = b.arithNode("csel", false, in.Ty, av, res, ec)
				}
				env[in] = res

			case ir.BinOp:
				x, err := val(in.Args[0])
				if err != nil {
					return nil, err
				}
				y, err := val(in.Args[1])
				if err != nil {
					return nil, err
				}
				op, _ := irOpName(in.Kind)
				env[in] = b.arithNode(op, in.Ty.Signed, in.Ty, x, y)

			case ir.Cmp:
				x, err := val(in.Args[0])
				if err != nil {
					return nil, err
				}
				y, err := val(in.Args[1])
				if err != nil {
					return nil, err
				}
				op, _ := irOpName(in.Kind)
				at := in.Args[0].Type()
				signed := at.Kind == types.Int && at.Signed
				env[in] = b.arithNode(op, signed, types.BoolType, x, y)

			case ir.Not:
				x, err := val(in.Args[0])
				if err != nil {
					return nil, err
				}
				env[in] = b.not(x)

			case ir.Select:
				c, err := val(in.Args[0])
				if err != nil {
					return nil, err
				}
				a, err := val(in.Args[1])
				if err != nil {
					return nil, err
				}
				d, err := val(in.Args[2])
				if err != nil {
					return nil, err
				}
				env[in] = b.arithNode("csel", false, in.Ty, a, d, c)

			case ir.Convert:
				x, err := val(in.Args[0])
				if err != nil {
					return nil, err
				}
				env[in] = b.arithNode("mov", false, in.Ty, x)

			case ir.WinLoad:
				idx, _ := ir.IsConst(in.Args[0])
				vs := version[in.Param]
				if int(idx) >= len(vs) {
					return nil, fmt.Errorf("codegen: window element %d out of range for %s", idx, in.Param.Nm)
				}
				env[in] = vs[idx]

			case ir.WinStore:
				idx, _ := ir.IsConst(in.Args[0])
				v, err := val(in.Args[1])
				if err != nil {
					return nil, err
				}
				vs := version[in.Param]
				if int(idx) >= len(vs) {
					return nil, fmt.Errorf("codegen: window element %d out of range for %s", idx, in.Param.Nm)
				}
				elemTy := in.Param.ElemType()
				v = b.arithNode("mov", false, elemTy, v)
				if p := predOf(blk); p != nil {
					vs[idx] = b.arithNode("csel", false, elemTy, v, vs[idx], p)
				} else {
					vs[idx] = v
				}

			case ir.RegLoad:
				idx, err := val(in.Args[0])
				if err != nil {
					return nil, err
				}
				rs := regFor(in.Global)
				if in.Global.Ctrl {
					// Control variables are switch-read-only (§4.1): every
					// load of the same element yields the same value, so
					// loads dedupe into one unconditional stateful read.
					ck := ctrlKey{rs, idx}
					if ld, ok := ctrlLoads[ck]; ok {
						env[in] = ld
						break
					}
					ld := b.add(&gval{kind: gSALUOut, ty: in.Ty})
					rs.accesses = append(rs.accesses, &access{kind: accLoad, idx: idx, load: ld})
					ctrlLoads[ck] = ld
					env[in] = ld
					break
				}
				ld := b.add(&gval{kind: gSALUOut, ty: in.Ty})
				rs.accesses = append(rs.accesses, &access{kind: accLoad, idx: idx, pred: predOf(blk), load: ld})
				env[in] = ld

			case ir.RegStore:
				idx, err := val(in.Args[0])
				if err != nil {
					return nil, err
				}
				v, err := val(in.Args[1])
				if err != nil {
					return nil, err
				}
				rs := regFor(in.Global)
				rs.accesses = append(rs.accesses, &access{kind: accStore, idx: idx, val: v, pred: predOf(blk)})

			case ir.MapFound:
				key, err := val(in.Args[0])
				if err != nil {
					return nil, err
				}
				env[in] = lookupFor(in.Global, key).hit

			case ir.MapValue:
				key, err := val(in.Args[0])
				if err != nil {
					return nil, err
				}
				env[in] = lookupFor(in.Global, key).val

			case ir.SketchAdd:
				key, err := val(in.Args[0])
				if err != nil {
					return nil, err
				}
				amt, err := val(in.Args[1])
				if err != nil {
					return nil, err
				}
				// One counter lane per row; each row updates its hashed
				// column once per window.
				for r := 0; r < in.Global.Type.Hashes; r++ {
					lane := sketchLane(in.Global, r)
					idx := b.hashNode(key, r, in.Global.Type.Bits)
					ld := b.add(&gval{kind: gSALUOut, ty: types.U32})
					lane.accesses = append(lane.accesses,
						&access{kind: accLoad, idx: idx, pred: predOf(blk), load: ld},
						&access{kind: accStore, idx: idx, val: b.arithNode("add", false, types.U32, ld, amt), pred: predOf(blk)})
				}

			case ir.SketchEst:
				key, err := val(in.Args[0])
				if err != nil {
					return nil, err
				}
				// Point estimate: min over per-row counters.
				var est *gval
				for r := 0; r < in.Global.Type.Hashes; r++ {
					lane := sketchLane(in.Global, r)
					idx := b.hashNode(key, r, in.Global.Type.Bits)
					ld := b.add(&gval{kind: gSALUOut, ty: types.U32})
					lane.accesses = append(lane.accesses, &access{kind: accLoad, idx: idx, pred: predOf(blk), load: ld})
					if est == nil {
						est = ld
					} else {
						lt := b.arithNode("lt", false, types.BoolType, ld, est)
						est = b.arithNode("csel", false, types.U32, ld, est, lt)
					}
				}
				env[in] = est

			case ir.BloomAdd:
				key, err := val(in.Args[0])
				if err != nil {
					return nil, err
				}
				for h := 0; h < in.Global.Type.Hashes; h++ {
					lane := bloomLane(in.Global, h)
					idx := b.hashNode(key, h, in.Global.Type.Bits)
					lane.accesses = append(lane.accesses, &access{kind: accStore, idx: idx, val: b.cnst(types.U8, 1), pred: predOf(blk)})
				}

			case ir.BloomTest:
				key, err := val(in.Args[0])
				if err != nil {
					return nil, err
				}
				res := b.boolConst(true)
				for h := 0; h < in.Global.Type.Hashes; h++ {
					lane := bloomLane(in.Global, h)
					idx := b.hashNode(key, h, in.Global.Type.Bits)
					ld := b.add(&gval{kind: gSALUOut, ty: types.U8})
					lane.accesses = append(lane.accesses, &access{kind: accLoad, idx: idx, pred: predOf(blk), load: ld})
					bit := b.arithNode("ne", false, types.BoolType, ld, b.cnst(types.U8, 0))
					res = b.and(res, bit)
				}
				env[in] = res

			case ir.WinMeta:
				ty := metaType(in.Field, winFields)
				env[in] = b.metaNode(in.Field, ty)

			case ir.LocMeta:
				env[in] = b.metaNode("$loc", types.U32)

			case ir.Fwd:
				kindVal := uint64(0)
				switch in.Field {
				case "pass":
					kindVal = 0
				case "drop":
					kindVal = 1
				case "reflect":
					kindVal = 2
				case "bcast":
					kindVal = 3
				}
				kv := b.cnst(types.U32, kindVal)
				lv := b.cnst(types.U32, 0) // 0 = no label
				if in.Label != "" {
					lv = b.cnst(types.U32, labels.Intern(in.Label))
				}
				if p := predOf(blk); p != nil {
					fk.fwd = b.arithNode("csel", false, types.U32, kv, fk.fwd, p)
					fk.fwdLabel = b.arithNode("csel", false, types.U32, lv, fk.fwdLabel, p)
				} else {
					fk.fwd = kv
					fk.fwdLabel = lv
				}

			case ir.Br, ir.CondBr, ir.Ret:
				// Terminators handled below.

			default:
				return nil, fmt.Errorf("codegen: unsupported op %s", in.Op)
			}
		}

		// Edge conditions from this block's terminator.
		t := blk.Term()
		switch t.Op {
		case ir.Br:
			accumEdge(cfgEdge{blk, t.Target}, bc)
		case ir.CondBr:
			c, err := val(t.Args[0])
			if err != nil {
				return nil, err
			}
			accumEdge(cfgEdge{blk, t.Target}, b.and(bc, c))
			accumEdge(cfgEdge{blk, t.Else}, b.and(bc, b.not(c)))
		}
	}

	// Final window versions.
	for p, vs := range version {
		fk.paramFinal[p] = vs
	}
	return fk, nil
}

func metaType(field string, winFields []ir.WinField) *types.Type {
	if t, ok := sema.WindowBuiltinFields[field]; ok {
		return t
	}
	for _, wf := range winFields {
		if wf.Name == field {
			return wf.Type
		}
	}
	return types.U32
}
