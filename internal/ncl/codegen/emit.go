package codegen

import (
	"fmt"

	"ncl/internal/ncl/types"
	"ncl/internal/pisa"
)

// emitKernel allocates PHV fields, builds schedulable units, runs the list
// scheduler, and packs the result into a pisa.Kernel.
func emitKernel(fk *flatKernel, clusters []*cluster, sched *scheduler, opts Options) (*pisa.Kernel, error) {
	kb := &kernelBuilder{fk: fk, fieldOf: map[*gval]pisa.FieldRef{}, unitOf: map[*gval]*unit{}}
	f := fk.f

	k := &pisa.Kernel{
		Name:      f.Name,
		WindowLen: f.WindowLen,
		WinMeta:   map[string]pisa.FieldRef{},
	}

	// Standard metadata fields.
	fwdField := kb.newField(pisa.FieldFwd, types.U8)
	fwdLabelField := kb.newField(pisa.FieldFwdLabel, types.U16)

	// Window data fields, in window-signature order.
	for _, p := range f.WindowSig() {
		pl := pisa.ParamLayout{
			Name:   p.Nm,
			Elems:  p.Elems(f.WindowLen),
			Bits:   p.ElemType().BitWidth(),
			Signed: p.ElemType().Kind == types.Int && p.ElemType().Signed,
			Bool:   p.ElemType().Kind == types.Bool,
		}
		for i := 0; i < pl.Elems; i++ {
			fr := kb.newField(fmt.Sprintf("d_%s_%d", p.Nm, i), p.ElemType())
			pl.Fields = append(pl.Fields, fr)
			kb.fieldOf[fk.paramInit[p][i]] = fr
		}
		k.Params = append(k.Params, pl)
	}

	// Metadata reads (window.seq etc. and location.id).
	for name, n := range fk.builder.metas {
		fr := kb.newField(name, n.ty)
		kb.fieldOf[n] = fr
		if name == "$loc" {
			continue // populated from the device id, not window metadata
		}
		k.WinMeta[name] = fr
	}

	// Table lookup result fields + units.
	for i, lk := range fk.lookups {
		lk.hitField = kb.newField(fmt.Sprintf("mh%d_%s", i, lk.g.Name), types.BoolType)
		lk.valField = kb.newField(fmt.Sprintf("mv%d_%s", i, lk.g.Name), lk.g.Type.Val)
		kb.fieldOf[lk.hit] = lk.hitField
		kb.fieldOf[lk.val] = lk.valField
		u := &unit{kind: uTable, lookup: lk}
		kb.units = append(kb.units, u)
		kb.unitOf[lk.hit] = u
		kb.unitOf[lk.val] = u
	}

	// Cluster units and export fields.
	for i, c := range clusters {
		u := &unit{kind: uSALU, cluster: c}
		kb.units = append(kb.units, u)
		if c.export != nil {
			fr := kb.newField(fmt.Sprintf("s%d_%s", i, c.reg.name), c.export.ty)
			kb.fieldOf[c.export] = fr
			kb.unitOf[c.export] = u
		}
		for _, a := range c.accs {
			if a.kind == accLoad {
				// Loads resolve inside the micro-program; external uses go
				// through the export. Record the producing unit so closure
				// walking stops here.
				if _, exported := kb.fieldOf[a.load]; !exported {
					kb.unitOf[a.load] = u
				}
			}
		}
	}

	// Emission closure over arith nodes.
	var need func(n *gval) error
	need = func(n *gval) error {
		if n == nil || n.kind == gConst {
			return nil
		}
		if _, done := kb.fieldOf[n]; done {
			return nil
		}
		switch n.kind {
		case gParamElem, gMeta, gTableHit, gTableVal:
			return nil // fields pre-allocated
		case gSALUOut:
			if kb.unitOf[n] == nil {
				return fmt.Errorf("stateful value escapes %s without an export path", n.ty)
			}
			if _, hasField := kb.fieldOf[n]; !hasField {
				return fmt.Errorf("internal stateful value of %s used externally but not exported", n.ty)
			}
			return nil
		case gArith:
			u := &unit{kind: uVLIW, node: n}
			kb.units = append(kb.units, u)
			kb.unitOf[n] = u
			kb.fieldOf[n] = kb.newField(fmt.Sprintf("m%d", n.id), n.ty)
			for _, a := range n.args {
				if err := need(a); err != nil {
					return err
				}
			}
			return nil
		}
		return fmt.Errorf("unexpected node kind in emission closure")
	}

	for _, lk := range fk.lookups {
		if err := need(lk.key); err != nil {
			return nil, err
		}
	}
	for _, c := range clusters {
		for _, d := range c.deps {
			if err := need(d); err != nil {
				return nil, err
			}
		}
	}
	var finals []*unit
	addFinal := func(src *gval, dst pisa.FieldRef, initNode *gval) error {
		if err := need(src); err != nil {
			return err
		}
		finals = append(finals, &unit{kind: uFinal, src: src, dstField: dst, node: initNode})
		return nil
	}
	for _, p := range f.WindowSig() {
		for i, final := range fk.paramFinal[p] {
			init := fk.paramInit[p][i]
			if final == init {
				continue
			}
			if err := addFinal(final, kb.fieldOf[init], init); err != nil {
				return nil, err
			}
		}
	}
	if !(fk.fwd.kind == gConst && fk.fwd.cval == 0) {
		if err := addFinal(fk.fwd, fwdField, nil); err != nil {
			return nil, err
		}
	}
	if !(fk.fwdLabel.kind == gConst && fk.fwdLabel.cval == 0) {
		if err := addFinal(fk.fwdLabel, fwdLabelField, nil); err != nil {
			return nil, err
		}
	}

	// Wire dependencies.
	producer := func(n *gval) *unit {
		if n == nil || n.kind == gConst {
			return nil
		}
		return kb.unitOf[n]
	}
	for _, u := range kb.units {
		switch u.kind {
		case uVLIW:
			for _, a := range u.node.args {
				if p := producer(a); p != nil {
					u.deps = append(u.deps, p)
				}
			}
		case uTable:
			if p := producer(u.lookup.key); p != nil {
				u.deps = append(u.deps, p)
			}
		case uSALU:
			for _, d := range u.cluster.deps {
				if p := producer(d); p != nil {
					u.deps = append(u.deps, p)
				}
			}
			// Chained clusters on the same array keep program order
			// across recirculation passes.
			if u.cluster.prev != nil {
				for _, v := range kb.units {
					if v.kind == uSALU && v.cluster == u.cluster.prev {
						u.deps = append(u.deps, v)
					}
				}
			}
		}
	}
	// Final units: dep on src producer; must not precede readers of the
	// field's initial value (they read the stage snapshot, so the same
	// slot is allowed).
	readersOf := func(init *gval) []*unit {
		if init == nil {
			return nil
		}
		var rs []*unit
		for _, u := range kb.units {
			switch u.kind {
			case uVLIW:
				for _, a := range u.node.args {
					if a == init {
						rs = append(rs, u)
					}
				}
			case uTable:
				if u.lookup.key == init {
					rs = append(rs, u)
				}
			case uSALU:
				for _, d := range u.cluster.deps {
					if d == init {
						rs = append(rs, u)
					}
				}
			}
		}
		return rs
	}
	for _, u := range finals {
		if p := producer(u.src); p != nil {
			u.deps = append(u.deps, p)
		}
		u.minSlots = readersOf(u.node)
	}

	// Schedule: all compute units in topological order, then writebacks.
	ordered, err := sortUnitsTopological(kb.units)
	if err != nil {
		return nil, err
	}
	for _, u := range ordered {
		if err := sched.place(u); err != nil {
			return nil, err
		}
	}
	for _, u := range finals {
		if err := sched.place(u); err != nil {
			return nil, err
		}
	}

	// Pack into passes and stages.
	all := append(append([]*unit{}, kb.units...), finals...)
	maxSlot := 0
	for _, u := range all {
		if u.slot > maxSlot {
			maxSlot = u.slot
		}
	}
	stages := sched.target.Stages
	nPasses := maxSlot/stages + 1
	k.Passes = make([][]*pisa.Stage, nPasses)
	for p := range k.Passes {
		k.Passes[p] = make([]*pisa.Stage, stages)
		for s := range k.Passes[p] {
			k.Passes[p][s] = &pisa.Stage{}
		}
	}
	for _, u := range all {
		st := k.Passes[u.slot/stages][u.slot%stages]
		switch u.kind {
		case uVLIW:
			op, err := kb.actionFor(u.node)
			if err != nil {
				return nil, err
			}
			st.VLIW = append(st.VLIW, op)
		case uFinal:
			st.VLIW = append(st.VLIW, pisa.ActionOp{Op: "mov", Dst: u.dstField, A: kb.operandOf(u.src)})
		case uTable:
			st.Tables = append(st.Tables, &pisa.Table{
				Name: u.lookup.g.Name,
				Key:  kb.operandOf(u.lookup.key),
				Hit:  u.lookup.hitField,
				Val:  u.lookup.valField,
			})
		case uSALU:
			sa, err := kb.saluFor(u.cluster)
			if err != nil {
				return nil, err
			}
			st.SALUs = append(st.SALUs, sa)
		}
	}
	// Trim trailing empty stages of the last pass.
	last := k.Passes[nPasses-1]
	for len(last) > 0 {
		s := last[len(last)-1]
		if len(s.VLIW) == 0 && len(s.SALUs) == 0 && len(s.Tables) == 0 {
			last = last[:len(last)-1]
			continue
		}
		break
	}
	k.Passes[nPasses-1] = last

	k.Fields = kb.fields
	return k, nil
}

// actionFor converts an arith node into a VLIW op.
func (kb *kernelBuilder) actionFor(n *gval) (pisa.ActionOp, error) {
	dst, ok := kb.fieldOf[n]
	if !ok {
		return pisa.ActionOp{}, fmt.Errorf("node without field")
	}
	op := pisa.ActionOp{Op: n.op, Signed: n.signed, Dst: dst}
	switch n.op {
	case "mov", "not":
		op.A = kb.operandOf(n.args[0])
	case "csel":
		op.A = kb.operandOf(n.args[0])
		op.B = kb.operandOf(n.args[1])
		op.C = kb.operandOf(n.args[2])
	case "hash":
		op.A = kb.operandOf(n.args[0])
		op.HashSeed = n.hashSeed
		op.HashBits = n.hashBits
	default:
		op.A = kb.operandOf(n.args[0])
		op.B = kb.operandOf(n.args[1])
	}
	return op, nil
}

// saluFor finalizes a cluster into a pisa.SALU, patching PHV-operand
// placeholders (graph node ids) into real field refs.
func (kb *kernelBuilder) saluFor(c *cluster) (*pisa.SALU, error) {
	sa := &pisa.SALU{
		Global: c.reg.name,
		Index:  kb.operandOf(c.idx),
		Out:    pisa.NoField,
	}
	if c.pred != nil {
		pf, ok := kb.fieldOf[c.pred]
		if !ok {
			return nil, fmt.Errorf("cluster predicate not materialized")
		}
		sa.Pred = &pisa.Pred{Field: pf}
	}
	if c.export != nil {
		sa.Out = kb.fieldOf[c.export]
	}
	nodes := kb.fk.builder.nodes
	for _, mo := range c.prog {
		patched := mo
		for _, opnd := range []*pisa.MOperand{&patched.A, &patched.B, &patched.C} {
			if opnd.Kind == pisa.MFromField {
				n := nodes[int(opnd.Field)]
				fr, ok := kb.fieldOf[n]
				if !ok {
					return nil, fmt.Errorf("stateful operand not materialized")
				}
				opnd.Field = fr
			}
		}
		sa.Prog = append(sa.Prog, patched)
	}
	return sa, nil
}
