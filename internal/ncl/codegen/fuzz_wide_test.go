package codegen

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"ncl/internal/ncl/interp"
	"ncl/internal/pisa"
)

// TestDifferentialWide is the broadened compiler fuzzer: kernels mix
// integer widths (u8/i32/u64), read window metadata, use nested branches,
// short-circuit conditions, ternaries, and helper calls — compiled at
// several window lengths, and the PISA pipeline must agree with the
// interpreter on every window and every register.
func TestDifferentialWide(t *testing.T) {
	rng := rand.New(rand.NewSource(20260706))
	arith := []string{"+", "-", "*", "&", "|", "^"}
	cmps := []string{"<", ">", "==", "!=", "<=", ">="}

	genExpr := func(depth int) string {
		var gen func(d int) string
		gen = func(d int) string {
			if d <= 0 || rng.Intn(3) == 0 {
				switch rng.Intn(5) {
				case 0:
					return fmt.Sprintf("a[%d]", rng.Intn(4))
				case 1:
					return fmt.Sprintf("(int)b[%d]", rng.Intn(2))
				case 2:
					return fmt.Sprintf("%d", rng.Intn(50))
				case 3:
					return "(int)window.seq"
				default:
					return "(int)window.from"
				}
			}
			if rng.Intn(6) == 0 {
				return fmt.Sprintf("(%s %s %s ? %s : %s)",
					gen(d-1), cmps[rng.Intn(len(cmps))], gen(d-1), gen(d-1), gen(d-1))
			}
			return fmt.Sprintf("(%s %s %s)", gen(d-1), arith[rng.Intn(len(arith))], gen(d-1))
		}
		return gen(depth)
	}

	var genStmts func(depth, n int) string
	genStmts = func(depth, n int) string {
		var b strings.Builder
		for s := 0; s < n; s++ {
			switch rng.Intn(6) {
			case 0:
				fmt.Fprintf(&b, "a[%d] = %s;\n", rng.Intn(4), genExpr(2))
			case 1:
				fmt.Fprintf(&b, "b[%d] = (uint8_t)(%s);\n", rng.Intn(2), genExpr(1))
			case 2:
				fmt.Fprintf(&b, "st[(unsigned)(%s) %% 8] += %s;\n", genExpr(1), genExpr(1))
			case 3:
				fmt.Fprintf(&b, "wide += (uint64_t)(%s);\n", genExpr(1))
			case 4:
				cond := fmt.Sprintf("%s %s %s", genExpr(1), cmps[rng.Intn(len(cmps))], genExpr(1))
				if rng.Intn(2) == 0 {
					cond = fmt.Sprintf("%s && %s %s %s", cond, genExpr(1), cmps[rng.Intn(len(cmps))], genExpr(1))
				}
				if depth > 0 {
					fmt.Fprintf(&b, "if (%s) {\n%s} else {\n%s}\n",
						cond, genStmts(depth-1, 1+rng.Intn(2)), genStmts(depth-1, 1))
				} else {
					fmt.Fprintf(&b, "if (%s) a[%d] = %s;\n", cond, rng.Intn(4), genExpr(1))
				}
			case 5:
				fmt.Fprintf(&b, "a[%d] = mix(a[%d], %s);\n", rng.Intn(4), rng.Intn(4), genExpr(1))
			}
		}
		return b.String()
	}

	for trial := 0; trial < 40; trial++ {
		W := []int{1, 2, 4}[rng.Intn(3)]
		// a: int window array scaled to W=4 shape via fixed 4 elements?
		// Keep a with 4 accesses only valid when W >= ... use index mod W.
		body := genStmts(2, 3+rng.Intn(4))
		// Rewrite window indices to stay within W.
		for k := 3; k >= 0; k-- {
			body = strings.ReplaceAll(body, fmt.Sprintf("a[%d]", k), fmt.Sprintf("a[%d]", k%W))
			body = strings.ReplaceAll(body, fmt.Sprintf("b[%d]", k), fmt.Sprintf("b[%d]", k%W))
		}
		src := `
_net_ int st[8] = {0};
_net_ uint64_t wide;
int mix(int x, int y) { if (x > y) return x - y; return x + y; }
_net_ _out_ void k(int *a, uint8_t *b) {
` + body + "}\n"

		m := buildModule(t, src, W)
		target := pisa.DefaultTarget()
		p, err := Compile(m, Options{Target: target, KernelIDs: map[string]uint32{"k": 1}})
		if err != nil {
			t.Logf("trial %d (W=%d) rejected: %v", trial, W, err)
			continue
		}
		sw := loadSwitch(t, p, target)
		f := m.FuncByName("k")
		ist := interp.NewState(m)
		stG := m.GlobalByName("st")
		wideG := m.GlobalByName("wide")

		for wt := 0; wt < 6; wt++ {
			wi := interp.NewWindow(f)
			wp := interp.NewWindow(f)
			for i := 0; i < W; i++ {
				v := uint64(rng.Int63n(1 << 12))
				wi.Data[0][i], wp.Data[0][i] = v, v
			}
			for i := 0; i < W; i++ {
				v := uint64(rng.Intn(256))
				wi.Data[1][i], wp.Data[1][i] = v, v
			}
			meta := map[string]uint64{"seq": uint64(rng.Intn(16)), "from": uint64(rng.Intn(4))}
			for k, v := range meta {
				wi.Meta[k] = v
				wp.Meta[k] = v
			}
			di, err := interp.Exec(f, ist, wi)
			if err != nil {
				t.Fatalf("trial %d: interp: %v\n%s", trial, err, src)
			}
			dp, err := sw.ExecWindow(1, wp)
			if err != nil {
				t.Fatalf("trial %d: pisa: %v\n%s", trial, err, src)
			}
			if di.Kind != dp.Kind {
				t.Fatalf("trial %d: decision %v vs %v\n%s", trial, di.Kind, dp.Kind, src)
			}
			for pi := range wi.Data {
				for i := range wi.Data[pi] {
					if wi.Data[pi][i] != wp.Data[pi][i] {
						t.Fatalf("trial %d window %d: param %d elem %d: interp %d vs pisa %d\nsource:\n%s",
							trial, wt, pi, i, wi.Data[pi][i], wp.Data[pi][i], src)
					}
				}
			}
			for i := 0; i < 8; i++ {
				pv := readState(sw, "st", i)
				if ist.Regs[stG][i] != pv {
					t.Fatalf("trial %d: st[%d] %d vs %d\n%s", trial, i, ist.Regs[stG][i], pv, src)
				}
			}
			pv := readState(sw, "wide", 0)
			if ist.Regs[wideG][0] != pv {
				t.Fatalf("trial %d: wide %d vs %d\n%s", trial, ist.Regs[wideG][0], pv, src)
			}
		}
	}
}
