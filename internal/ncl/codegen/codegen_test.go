package codegen

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"ncl/internal/ncl/interp"
	"ncl/internal/ncl/ir"
	"ncl/internal/ncl/lower"
	"ncl/internal/ncl/parser"
	"ncl/internal/ncl/passes"
	"ncl/internal/ncl/sema"
	"ncl/internal/ncl/source"
	"ncl/internal/pisa"
)

// buildModule runs the full frontend + optimizer for window length w.
func buildModule(t *testing.T, src string, w int) *ir.Module {
	t.Helper()
	var diags source.DiagList
	f := parser.ParseSource("test.ncl", src, &diags)
	info := sema.Check(f, &diags)
	if diags.HasErrors() {
		t.Fatalf("frontend: %v", diags.Err())
	}
	m := lower.Lower("test", info, w, &diags)
	if diags.HasErrors() {
		t.Fatalf("lowering: %v", diags.Err())
	}
	passes.Optimize(m)
	if err := ir.Verify(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return m
}

func compileProgram(t *testing.T, m *ir.Module, target pisa.TargetConfig) *pisa.Program {
	t.Helper()
	ids := map[string]uint32{}
	for i, f := range m.Funcs {
		ids[f.Name] = uint32(i + 1)
	}
	p, err := Compile(m, Options{Target: target, KernelIDs: ids})
	if err != nil {
		t.Fatalf("codegen: %v", err)
	}
	return p
}

// readState reads logical element i of array `name` from the switch,
// resolving compiler-created lanes (static-scatter lanes `name$i` with one
// element, or affine lanes `name$c` holding slots c, c+S, ...).
func readState(sw *pisa.Switch, name string, i int) uint64 {
	if v, err := sw.ReadRegister(name, i); err == nil {
		return v
	}
	if v, err := sw.ReadRegister(fmt.Sprintf("%s$%d", name, i), 0); err == nil {
		return v
	}
	// Affine lanes: the stride equals the number of lanes.
	S := 0
	for _, r := range sw.Program().Registers {
		if strings.HasPrefix(r.Name, name+"$") {
			S++
		}
	}
	if S > 0 {
		if v, err := sw.ReadRegister(fmt.Sprintf("%s$%d", name, i%S), i/S); err == nil {
			return v
		}
	}
	return 0 // untouched slot: zero-initialized state
}

func loadSwitch(t *testing.T, p *pisa.Program, target pisa.TargetConfig) *pisa.Switch {
	t.Helper()
	sw := pisa.NewSwitch(target)
	if err := sw.Load(p); err != nil {
		t.Fatalf("load: %v", err)
	}
	return sw
}

func TestCompileStraightLine(t *testing.T) {
	m := buildModule(t, `
_net_ _out_ void k(int *d) { d[0] = d[0] * 2 + d[1]; }
`, 2)
	target := pisa.DefaultTarget()
	p := compileProgram(t, m, target)
	sw := loadSwitch(t, p, target)
	win := interp.NewWindow(m.FuncByName("k"))
	win.Data[0][0] = 7
	win.Data[0][1] = 3
	dec, err := sw.ExecWindow(1, win)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Kind != interp.Pass {
		t.Errorf("decision = %v", dec.Kind)
	}
	if win.Data[0][0] != 17 {
		t.Errorf("d[0] = %d, want 17", win.Data[0][0])
	}
}

func TestCompileBranches(t *testing.T) {
	m := buildModule(t, `
_net_ _out_ void k(int *d) {
    if (d[0] > 10) { d[1] = 1; _drop(); }
    else if (d[0] > 5) d[1] = 2;
    else { d[1] = 3; _reflect(); }
}
`, 2)
	target := pisa.DefaultTarget()
	p := compileProgram(t, m, target)
	sw := loadSwitch(t, p, target)
	cases := []struct {
		in   uint64
		out  uint64
		kind interp.DecisionKind
	}{
		{20, 1, interp.Drop}, {7, 2, interp.Pass}, {1, 3, interp.Reflect},
	}
	for _, c := range cases {
		win := interp.NewWindow(m.FuncByName("k"))
		win.Data[0][0] = c.in
		dec, err := sw.ExecWindow(1, win)
		if err != nil {
			t.Fatal(err)
		}
		if win.Data[0][1] != c.out || dec.Kind != c.kind {
			t.Errorf("in=%d: out=%d dec=%v, want %d/%v", c.in, win.Data[0][1], dec.Kind, c.out, c.kind)
		}
	}
}

func TestCompileStatefulRMW(t *testing.T) {
	m := buildModule(t, `
_net_ unsigned total;
_net_ _out_ void k(unsigned v) { total += v; }
`, 1)
	target := pisa.DefaultTarget()
	p := compileProgram(t, m, target)
	sw := loadSwitch(t, p, target)
	for _, v := range []uint64{5, 10, 1} {
		win := interp.NewWindow(m.FuncByName("k"))
		win.Data[0][0] = v
		if _, err := sw.ExecWindow(1, win); err != nil {
			t.Fatal(err)
		}
	}
	got, err := sw.ReadRegister("total", 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != 16 {
		t.Errorf("total = %d, want 16", got)
	}
}

// TestLanePartitioning checks that the Fig. 4 accumulation pattern splits
// into W register lanes, each accessed once per pass (no recirculation).
func TestLanePartitioning(t *testing.T) {
	const W = 8
	m := buildModule(t, `
_net_ int accum[64] = {0};
_net_ _out_ void k(int *data) {
    unsigned base = window.seq * window.len;
    for (unsigned i = 0; i < window.len; ++i)
        accum[base + i] += data[i];
}
`, W)
	target := pisa.DefaultTarget()
	p := compileProgram(t, m, target)
	if len(p.Registers) != W {
		t.Fatalf("want %d lanes, got %d: %+v", W, len(p.Registers), p.Registers)
	}
	for _, r := range p.Registers {
		if !strings.HasPrefix(r.Name, "accum$") || r.Elems != 8 {
			t.Errorf("unexpected lane %+v", r)
		}
	}
	k := p.KernelByName("k")
	if len(k.Passes) != 1 {
		t.Errorf("lane partitioning should avoid recirculation, got %d passes", len(k.Passes))
	}
	// Execute and check lane state.
	sw := loadSwitch(t, p, target)
	win := interp.NewWindow(m.FuncByName("k"))
	for i := 0; i < W; i++ {
		win.Data[0][i] = uint64(i + 1)
	}
	win.Meta["seq"] = 3
	if _, err := sw.ExecWindow(1, win); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < W; i++ {
		got, err := sw.ReadRegister(fmt.Sprintf("accum$%d", i), 3)
		if err != nil {
			t.Fatal(err)
		}
		if got != uint64(i+1) {
			t.Errorf("lane %d slot 3 = %d, want %d", i, got, i+1)
		}
	}
}

// TestRecirculationFallback: two same-array accesses at unrelated dynamic
// indices cannot lane-partition and must recirculate.
func TestRecirculationFallback(t *testing.T) {
	m := buildModule(t, `
_net_ int tbl[64] = {0};
_net_ _out_ void k(unsigned *d) {
    tbl[d[0]] += 1;
    tbl[d[1]] += 1;
}
`, 2)
	target := pisa.DefaultTarget()
	p := compileProgram(t, m, target)
	k := p.KernelByName("k")
	if len(k.Passes) < 2 {
		t.Fatalf("unrelated same-array indices need recirculation, got %d passes", len(k.Passes))
	}
	sw := loadSwitch(t, p, target)
	win := interp.NewWindow(m.FuncByName("k"))
	win.Data[0][0] = 5
	win.Data[0][1] = 9
	if _, err := sw.ExecWindow(1, win); err != nil {
		t.Fatal(err)
	}
	for _, idx := range []int{5, 9} {
		got, _ := sw.ReadRegister("tbl", idx)
		if got != 1 {
			t.Errorf("tbl[%d] = %d, want 1", idx, got)
		}
	}
}

// TestRecirculationBudgetExceeded: more distinct accesses than passes.
func TestRecirculationBudgetExceeded(t *testing.T) {
	m := buildModule(t, `
_net_ int tbl[64] = {0};
_net_ _out_ void k(unsigned *a, unsigned *b, unsigned *c, unsigned *d, unsigned *e, unsigned *f) {
    tbl[a[0]] += 1; tbl[b[0]] += 1; tbl[c[0]] += 1;
    tbl[d[0]] += 1; tbl[e[0]] += 1; tbl[f[0]] += 1;
}
`, 1)
	target := pisa.DefaultTarget()
	target.MaxRecirc = 2 // 3 passes max, 6 needed
	ids := map[string]uint32{"k": 1}
	_, err := Compile(m, Options{Target: target, KernelIDs: ids})
	if err == nil {
		t.Fatal("exceeding the recirculation budget must be rejected")
	}
	if !strings.Contains(err.Error(), "recirculation") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestStageBudgetRejected(t *testing.T) {
	// A long dependency chain cannot fit a tiny pipeline without recirc;
	// with recirculation disabled it must be rejected.
	var b strings.Builder
	b.WriteString("_net_ _out_ void k(int *d) {\n")
	for i := 0; i < 30; i++ {
		fmt.Fprintf(&b, "d[0] = d[0] * 3 + %d;\n", i)
	}
	b.WriteString("}\n")
	m := buildModule(t, b.String(), 1)
	target := pisa.DefaultTarget()
	target.Stages = 8
	target.MaxRecirc = 0
	_, err := Compile(m, Options{Target: target, KernelIDs: map[string]uint32{"k": 1}})
	if err == nil {
		t.Fatal("30-deep dependence chain cannot fit 8 stages without recirculation")
	}
}

func TestMapLookupCompiles(t *testing.T) {
	m := buildModule(t, `
_net_ ncl::Map<uint64_t, uint8_t, 16> M;
_net_ bool Valid[16] = {false};
_net_ _out_ void k(uint64_t key, bool *hit) {
    if (auto *idx = M[key]) { hit[0] = Valid[*idx]; } else { hit[0] = false; }
}
`, 1)
	target := pisa.DefaultTarget()
	p := compileProgram(t, m, target)
	sw := loadSwitch(t, p, target)
	if err := sw.InstallEntry("M", 42, 3); err != nil {
		t.Fatal(err)
	}
	if err := sw.WriteRegister("Valid", 3, 1); err != nil {
		t.Fatal(err)
	}
	run := func(key uint64) uint64 {
		win := interp.NewWindow(m.FuncByName("k"))
		win.Data[0][0] = key
		if _, err := sw.ExecWindow(1, win); err != nil {
			t.Fatal(err)
		}
		return win.Data[1][0]
	}
	if run(42) != 1 {
		t.Error("installed valid key must hit")
	}
	if run(99) != 0 {
		t.Error("missing key must miss")
	}
}

func TestBloomCompiles(t *testing.T) {
	m := buildModule(t, `
_net_ ncl::Bloom<512, 3> seen;
_net_ _out_ void k(uint64_t key, bool *dup) {
    dup[0] = seen.test(key);
    seen.add(key);
}
`, 1)
	target := pisa.DefaultTarget()
	p := compileProgram(t, m, target)
	// Three per-hash lanes.
	lanes := 0
	for _, r := range p.Registers {
		if strings.HasPrefix(r.Name, "seen#") {
			lanes++
		}
	}
	if lanes != 3 {
		t.Fatalf("want 3 bloom lanes, got %d", lanes)
	}
	sw := loadSwitch(t, p, target)
	run := func(key uint64) uint64 {
		win := interp.NewWindow(m.FuncByName("k"))
		win.Data[0][0] = key
		if _, err := sw.ExecWindow(1, win); err != nil {
			t.Fatal(err)
		}
		return win.Data[1][0]
	}
	if run(77) != 0 {
		t.Error("first sighting must miss")
	}
	if run(77) != 1 {
		t.Error("second sighting must hit (no false negatives)")
	}
}

// TestFig4CompilesAndRuns: the paper's AllReduce end-to-end on the PISA
// simulator, matching the interpreter's protocol semantics.
func TestFig4CompilesAndRuns(t *testing.T) {
	const W = 4
	src := `
_net_ _at_("s1") int accum[64] = {0};
_net_ _at_("s1") unsigned count[16] = {0};
_net_ _at_("s1") _ctrl_ unsigned nworkers;
_net_ _out_ void allreduce(int *data) {
    unsigned base = window.seq * window.len;
    for (unsigned i = 0; i < window.len; ++i)
        accum[base + i] += data[i];
    if (++count[window.seq] == nworkers) {
        memcpy(data, &accum[base], window.len * 4);
        count[window.seq] = 0; _bcast();
    } else { _drop(); }
}
`
	m := buildModule(t, src, W)
	target := pisa.DefaultTarget()
	p := compileProgram(t, m, target)
	sw := loadSwitch(t, p, target)
	if err := sw.WriteRegister("nworkers", 0, 2); err != nil {
		t.Fatal(err)
	}

	send := func(seq uint64, vals []uint64) (*interp.Window, interp.Decision) {
		win := interp.NewWindow(m.FuncByName("allreduce"))
		copy(win.Data[0], vals)
		win.Meta["seq"] = seq
		dec, err := sw.ExecWindow(1, win)
		if err != nil {
			t.Fatal(err)
		}
		return win, dec
	}
	_, d1 := send(0, []uint64{1, 2, 3, 4})
	if d1.Kind != interp.Drop {
		t.Fatalf("first worker window must drop, got %v", d1.Kind)
	}
	w2, d2 := send(0, []uint64{10, 20, 30, 40})
	if d2.Kind != interp.Bcast {
		t.Fatalf("completing window must broadcast, got %v", d2.Kind)
	}
	want := []uint64{11, 22, 33, 44}
	for i, w := range want {
		if w2.Data[0][i] != w {
			t.Errorf("sum[%d] = %d, want %d", i, w2.Data[0][i], w)
		}
	}
	// Counter must have reset.
	cnt, _ := sw.ReadRegister("count", 0)
	if cnt != 0 {
		t.Errorf("count[0] = %d, want 0", cnt)
	}
}

// TestFig5CompilesAndRuns: the paper's KVS cache on the simulator.
func TestFig5CompilesAndRuns(t *testing.T) {
	const VAL = 8
	src := `
#define SERVER 1
_net_ _at_("s1") ncl::Map<uint64_t, uint8_t, 16> Idx;
_net_ _at_("s1") char Cache[16][8] = {{0}};
_net_ _at_("s1") bool Valid[16] = {false};
_net_ _out_ void query(uint64_t key, char *val, bool update) {
    if (window.from != SERVER && update) {
        if (auto *idx = Idx[key]) Valid[*idx] = false;
    } else if (window.from != SERVER) {
        if (auto *idx = Idx[key]) {
            if (Valid[*idx]) {
                memcpy(val, Cache[*idx], 8); _reflect(); } }
    } else if (update) {
        auto *idx = Idx[key]; memcpy(Cache[*idx], val, 8);
        Valid[*idx] = true; _drop();
    } else { }
}
`
	m := buildModule(t, src, VAL)
	target := pisa.DefaultTarget()
	p := compileProgram(t, m, target)
	sw := loadSwitch(t, p, target)
	if err := sw.InstallEntry("Idx", 7, 3); err != nil {
		t.Fatal(err)
	}
	exec := func(key uint64, val []uint64, update bool, from uint64) (*interp.Window, interp.Decision) {
		win := interp.NewWindow(m.FuncByName("query"))
		win.Data[0][0] = key
		copy(win.Data[1], val)
		if update {
			win.Data[2][0] = 1
		}
		win.Meta["from"] = from
		dec, err := sw.ExecWindow(1, win)
		if err != nil {
			t.Fatal(err)
		}
		return win, dec
	}
	if _, dec := exec(7, make([]uint64, VAL), false, 0); dec.Kind != interp.Pass {
		t.Fatalf("pre-install GET must pass, got %v", dec.Kind)
	}
	valBytes := []uint64{0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x78}
	if _, dec := exec(7, valBytes, true, 1); dec.Kind != interp.Drop {
		t.Fatalf("server update must drop, got %v", dec.Kind)
	}
	win, dec := exec(7, make([]uint64, VAL), false, 0)
	if dec.Kind != interp.Reflect {
		t.Fatalf("hit must reflect, got %v", dec.Kind)
	}
	for i, b := range valBytes {
		if win.Data[1][i] != b {
			t.Errorf("byte %d = %#x, want %#x", i, win.Data[1][i], b)
		}
	}
	if _, dec := exec(7, valBytes, true, 0); dec.Kind != interp.Pass {
		t.Fatalf("client PUT must pass, got %v", dec.Kind)
	}
	if _, dec := exec(7, make([]uint64, VAL), false, 0); dec.Kind != interp.Pass {
		t.Fatalf("invalidated GET must miss, got %v", dec.Kind)
	}
}

// TestAblationOptimizerEnablesLanes demonstrates why the optimizer is a
// dependency of code generation, not a luxury (the DESIGN.md §5.2 call
// out): lane partitioning pattern-matches the affine index shape
// dyn*S + c, which only emerges after algebraic identities fold. Without
// optimization the Fig. 4 accumulation has W distinct opaque indices and
// must fall back to recirculation — blowing the pass budget at W=8.
func TestAblationOptimizerEnablesLanes(t *testing.T) {
	src := `
_net_ int accum[64] = {0};
_net_ _out_ void k(int *data) {
    unsigned base = window.seq * window.len;
    for (unsigned i = 0; i < window.len; ++i)
        accum[base + i] += data[i];
}
`
	build := func(optimize bool) (*pisa.Program, error) {
		var diags source.DiagList
		f := parser.ParseSource("t.ncl", src, &diags)
		info := sema.Check(f, &diags)
		m := lower.Lower("t", info, 8, &diags)
		if diags.HasErrors() {
			t.Fatal(diags.Err())
		}
		if optimize {
			passes.Optimize(m)
		}
		return Compile(m, Options{Target: pisa.DefaultTarget(), KernelIDs: map[string]uint32{"k": 1}})
	}
	withOpt, err := build(true)
	if err != nil {
		t.Fatalf("optimized build failed: %v", err)
	}
	if got := len(withOpt.KernelByName("k").Passes); got != 1 {
		t.Errorf("optimized build should lane-partition into 1 pass, got %d", got)
	}
	withoutOpt, err := build(false)
	if err == nil {
		// If it compiled at all, it must have paid recirculation passes.
		if got := len(withoutOpt.KernelByName("k").Passes); got <= 1 {
			t.Errorf("unoptimized build should need recirculation, got %d passes", got)
		}
	}
	// Either outcome (rejection or multi-pass) demonstrates the ablation.
}

func TestPassLabelSurvives(t *testing.T) {
	m := buildModule(t, `
_net_ _out_ void k(int *d) { if (d[0] > 0) _pass("server"); }
`, 1)
	target := pisa.DefaultTarget()
	p := compileProgram(t, m, target)
	sw := loadSwitch(t, p, target)
	win := interp.NewWindow(m.FuncByName("k"))
	win.Data[0][0] = 5
	dec, err := sw.ExecWindow(1, win)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Kind != interp.Pass || dec.Label != "server" {
		t.Errorf("decision = %v/%q, want pass/server", dec.Kind, dec.Label)
	}
	win2 := interp.NewWindow(m.FuncByName("k"))
	dec2, _ := sw.ExecWindow(1, win2)
	if dec2.Label != "" {
		t.Errorf("untaken label must not leak: %q", dec2.Label)
	}
}

// TestDifferentialInterpVsPisa generates random kernels and checks the
// PISA pipeline agrees with the interpreter on window data, decisions,
// and register state — the central correctness property of the compiler.
func TestDifferentialInterpVsPisa(t *testing.T) {
	rng := rand.New(rand.NewSource(424242))
	ops := []string{"+", "-", "*", "/", "%", "&", "|", "^"}
	cmps := []string{"<", ">", "==", "!=", "<=", ">="}
	for trial := 0; trial < 50; trial++ {
		var body strings.Builder
		n := 3 + rng.Intn(6)
		for s := 0; s < n; s++ {
			dst := rng.Intn(4)
			a, bIdx := rng.Intn(4), rng.Intn(4)
			op := ops[rng.Intn(len(ops))]
			switch rng.Intn(5) {
			case 0:
				fmt.Fprintf(&body, "d[%d] = d[%d] %s d[%d];\n", dst, a, op, bIdx)
			case 1:
				fmt.Fprintf(&body, "st[%d] += d[%d];\n", rng.Intn(4), a)
			case 2:
				fmt.Fprintf(&body, "d[%d] = st[%d] %s %d;\n", dst, rng.Intn(4), op, 1+rng.Intn(9))
			case 3:
				fmt.Fprintf(&body, "if (d[%d] %s d[%d]) d[%d] = d[%d] %s %d;\n",
					a, cmps[rng.Intn(len(cmps))], bIdx, dst, a, op, 1+rng.Intn(9))
			case 4:
				fmt.Fprintf(&body, "if (d[%d] %s %d) { st[%d] += 1; _drop(); } else { d[%d] = %d; }\n",
					a, cmps[rng.Intn(len(cmps))], rng.Intn(50), rng.Intn(4), dst, rng.Intn(100))
			}
		}
		src := "_net_ int st[4] = {0};\n_net_ _out_ void k(int *d) {\n" + body.String() + "}\n"

		m := buildModule(t, src, 4)
		target := pisa.DefaultTarget()
		ids := map[string]uint32{"k": 1}
		p, err := Compile(m, Options{Target: target, KernelIDs: ids})
		if err != nil {
			// Resource rejection is legitimate compiler behavior (§5: the
			// backend may reject); the property is "if it compiles, it
			// matches the interpreter".
			t.Logf("trial %d rejected: %v", trial, err)
			continue
		}
		sw := loadSwitch(t, p, target)
		f := m.FuncByName("k")
		ist := interp.NewState(m)
		stG := m.GlobalByName("st")

		for wtrial := 0; wtrial < 6; wtrial++ {
			var seed [4]uint64
			for i := range seed {
				seed[i] = uint64(rng.Int63n(1 << 16))
			}
			wi := interp.NewWindow(f)
			wp := interp.NewWindow(f)
			copy(wi.Data[0], seed[:])
			copy(wp.Data[0], seed[:])

			di, err := interp.Exec(f, ist, wi)
			if err != nil {
				t.Fatalf("trial %d: interp: %v\n%s", trial, err, src)
			}
			dp, err := sw.ExecWindow(1, wp)
			if err != nil {
				t.Fatalf("trial %d: pisa: %v\n%s", trial, err, src)
			}
			if di.Kind != dp.Kind {
				t.Fatalf("trial %d: decision diverged: %v vs %v\nsource:\n%s", trial, di.Kind, dp.Kind, src)
			}
			for i := range wi.Data[0] {
				if wi.Data[0][i] != wp.Data[0][i] {
					t.Fatalf("trial %d: window[%d]: interp %d vs pisa %d\nsource:\n%s\nIR:\n%s",
						trial, i, wi.Data[0][i], wp.Data[0][i], src, m.FuncByName("k"))
				}
			}
			for i := 0; i < 4; i++ {
				pv := readState(sw, "st", i)
				if ist.Regs[stG][i] != pv {
					t.Fatalf("trial %d: state[%d]: interp %d vs pisa %d\nsource:\n%s",
						trial, i, ist.Regs[stG][i], pv, src)
				}
			}
		}
	}
}
