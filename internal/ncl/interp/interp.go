// Package interp executes IR kernels directly. It serves two roles in the
// NCL system (Fig. 3a of the paper):
//
//   - it is the host-side execution engine for _in_ (incoming) kernels —
//     the stand-in for the host binary the paper's Clang pipeline would
//     produce (host mains are Go; incoming kernels still run compiled NCL);
//   - it is the semantic oracle for the switch pipeline: codegen'd PISA
//     programs must agree with the interpreter on every window, which the
//     differential tests enforce.
package interp

import (
	"fmt"
	"hash/fnv"

	"ncl/internal/ncl/ir"
	"ncl/internal/ncl/sema"
	"ncl/internal/ncl/token"
	"ncl/internal/ncl/types"
)

// State holds the mutable device state a kernel executes against: register
// arrays (switch memory), Maps (control-plane MATs), and Bloom filters.
type State struct {
	Regs     map[*ir.Global][]uint64
	Maps     map[*ir.Global]map[uint64]uint64
	Blooms   map[*ir.Global][]uint64 // bitset words
	Sketches map[*ir.Global][]uint64 // rows*cols counters, row-major
}

// NewState allocates state for every global of m, applying initializers.
func NewState(m *ir.Module) *State {
	st := &State{
		Regs:     map[*ir.Global][]uint64{},
		Maps:     map[*ir.Global]map[uint64]uint64{},
		Blooms:   map[*ir.Global][]uint64{},
		Sketches: map[*ir.Global][]uint64{},
	}
	for _, g := range m.Globals {
		st.AddGlobal(g)
	}
	return st
}

// AddGlobal allocates backing storage for one global.
func (st *State) AddGlobal(g *ir.Global) {
	switch {
	case g.IsMap():
		st.Maps[g] = map[uint64]uint64{}
	case g.IsBloom():
		words := (g.Type.Bits + 63) / 64
		st.Blooms[g] = make([]uint64, words)
	case g.IsSketch():
		st.Sketches[g] = make([]uint64, g.Type.Hashes*g.Type.Bits)
	default:
		vals := make([]uint64, g.ElemCount())
		copy(vals, g.Init)
		st.Regs[g] = vals
	}
}

// MapInsert installs a Map entry (control-plane operation, §4.3).
func (st *State) MapInsert(g *ir.Global, key, val uint64) error {
	m, ok := st.Maps[g]
	if !ok {
		return fmt.Errorf("interp: %s is not a Map in this state", g.Name)
	}
	if _, exists := m[key]; !exists && len(m) >= g.Type.Cap {
		return fmt.Errorf("interp: Map %s is full (capacity %d)", g.Name, g.Type.Cap)
	}
	m[key] = g.Type.Val.Normalize(val)
	return nil
}

// MapDelete removes a Map entry (cache eviction in Fig. 5's discussion).
func (st *State) MapDelete(g *ir.Global, key uint64) {
	if m, ok := st.Maps[g]; ok {
		delete(m, key)
	}
}

// CtrlWrite sets a control variable (host-written, switch-read-only).
func (st *State) CtrlWrite(g *ir.Global, idx int, val uint64) error {
	r, ok := st.Regs[g]
	if !ok {
		return fmt.Errorf("interp: %s has no register state", g.Name)
	}
	if idx < 0 || idx >= len(r) {
		return fmt.Errorf("interp: ctrl write to %s[%d] out of range", g.Name, idx)
	}
	r[idx] = g.ElemType().Normalize(val)
	return nil
}

// Decision is a kernel's forwarding decision (§4.1). The zero value is
// Pass with no label (the default behavior the paper specifies).
type Decision struct {
	Kind  DecisionKind
	Label string // _pass(label) target
	// Suppressed reports that the window was recognized as a duplicate of
	// one already applied (exactly-once shadow state, pisa package): its
	// state-mutating ops were skipped. The decision itself is still the
	// kernel's output over the suppressed execution, so forwarding
	// behavior stays programmable.
	Suppressed bool
}

// DecisionKind enumerates forwarding outcomes.
type DecisionKind int

const (
	Pass DecisionKind = iota
	Drop
	Reflect
	Bcast
)

func (k DecisionKind) String() string {
	switch k {
	case Pass:
		return "pass"
	case Drop:
		return "drop"
	case Reflect:
		return "reflect"
	case Bcast:
		return "bcast"
	}
	return "?"
}

// Window is one window's data and metadata as seen by a kernel. Data is
// indexed by window-parameter order (pointer params hold WindowLen
// elements, scalars one); Ext is indexed by ext-parameter order and
// references host memory directly.
//
// The Meta map is the interpreter's (and the host runtime's) metadata
// convention. The switch data plane does not build it per packet: the
// compiled PISA plan binds header and user fields to PHV slots at load
// time and executes via pisa.WindowMeta (see pisa.Switch.ExecWindowSlots).
type Window struct {
	Data [][]uint64
	Ext  [][]uint64
	Meta map[string]uint64 // seq, from, sender, wid, plus _win_ fields
	Loc  uint32            // location.id of the executing device
	// ExactlyOnce asks the executing device to consult its duplicate
	// shadow state (keyed on Meta's seq/sender/wid) before running
	// state-mutating ops; duplicates execute with those ops suppressed.
	ExactlyOnce bool
}

// NewWindow allocates a zeroed window shaped for kernel f: one data slice
// per window parameter (W elements for pointers, 1 for scalars) and empty
// metadata. Ext slices must be bound by the caller for incoming kernels.
func NewWindow(f *ir.Func) *Window {
	w := &Window{Meta: map[string]uint64{}}
	for _, p := range f.WindowSig() {
		w.Data = append(w.Data, make([]uint64, p.Elems(f.WindowLen)))
	}
	return w
}

// Exec runs kernel f against st and win, returning the forwarding
// decision. Window data is modified in place; Ext slices reference host
// memory and are written directly.
func Exec(f *ir.Func, st *State, win *Window) (Decision, error) {
	// Canonicalize window data to each parameter's element width, exactly
	// as the wire (NCP encoding) and the PISA parser do — values wider
	// than the element type cannot exist on a real packet.
	for pi, p := range f.WindowSig() {
		if pi >= len(win.Data) {
			break
		}
		et := p.ElemType()
		for i := range win.Data[pi] {
			v := win.Data[pi][i]
			if et.Kind == types.Bool {
				// Wire semantics: a bool is one byte; truncate first, then
				// boolify (0x100 arrives as byte 0, i.e. false).
				v &= 0xFF
			}
			win.Data[pi][i] = et.Normalize(v)
		}
	}
	ex := &executor{f: f, st: st, win: win, vals: map[*ir.Instr]uint64{}}
	return ex.run()
}

type executor struct {
	f    *ir.Func
	st   *State
	win  *Window
	vals map[*ir.Instr]uint64
	dec  Decision
}

// winIndex maps a param to its index among window (non-ext) params, and
// ext params to their index among ext params.
func paramSlot(f *ir.Func, p *ir.Param) int {
	slot := 0
	for _, q := range f.Params {
		if q == p {
			return slot
		}
		if q.Ext == p.Ext {
			slot++
		}
	}
	return -1
}

func (ex *executor) run() (Decision, error) {
	var prev *ir.Block
	blk := ex.f.Entry()
	steps := 0
	for {
		steps++
		if steps > 1_000_000 {
			return ex.dec, fmt.Errorf("interp: runaway execution in %s", ex.f.Name)
		}
		// φs evaluate simultaneously from the incoming edge.
		phiVals := map[*ir.Instr]uint64{}
		for _, in := range blk.Instrs {
			if in.Op != ir.Phi {
				break
			}
			idx := -1
			for i, p := range blk.Preds {
				if p == prev {
					idx = i
					break
				}
			}
			if idx < 0 {
				return ex.dec, fmt.Errorf("interp: φ in %s has no edge from %v", blk.Name, prevName(prev))
			}
			v, err := ex.value(in.Args[idx])
			if err != nil {
				return ex.dec, err
			}
			phiVals[in] = in.Ty.Normalize(v)
		}
		for in, v := range phiVals {
			ex.vals[in] = v
		}

		var next *ir.Block
		for _, in := range blk.Instrs {
			if in.Op == ir.Phi {
				continue
			}
			n, err := ex.step(in)
			if err != nil {
				return ex.dec, fmt.Errorf("interp: %s: %w", in, err)
			}
			if in.Op == ir.Ret {
				return ex.dec, nil
			}
			if n != nil {
				next = n
			}
		}
		if next == nil {
			return ex.dec, fmt.Errorf("interp: block %s fell through", blk.Name)
		}
		prev, blk = blk, next
	}
}

func prevName(b *ir.Block) string {
	if b == nil {
		return "<entry>"
	}
	return b.Name
}

func (ex *executor) value(v ir.Value) (uint64, error) {
	switch v := v.(type) {
	case *ir.Const:
		return v.Val, nil
	case *ir.Instr:
		val, ok := ex.vals[v]
		if !ok {
			return 0, fmt.Errorf("use of unevaluated value %s", v.Name())
		}
		return val, nil
	case *ir.Param:
		return 0, fmt.Errorf("raw parameter %s has no value", v.Name())
	}
	return 0, fmt.Errorf("unknown value kind %T", v)
}

// step executes one instruction, returning the next block for terminators.
func (ex *executor) step(in *ir.Instr) (*ir.Block, error) {
	set := func(v uint64) {
		ex.vals[in] = in.Ty.Normalize(v)
	}
	switch in.Op {
	case ir.BinOp:
		x, err := ex.value(in.Args[0])
		if err != nil {
			return nil, err
		}
		y, err := ex.value(in.Args[1])
		if err != nil {
			return nil, err
		}
		set(EvalBin(in.Kind, x, y, in.Ty))
	case ir.Cmp:
		x, err := ex.value(in.Args[0])
		if err != nil {
			return nil, err
		}
		y, err := ex.value(in.Args[1])
		if err != nil {
			return nil, err
		}
		set(EvalCmp(in.Kind, x, y, in.Args[0].Type()))
	case ir.Not:
		x, err := ex.value(in.Args[0])
		if err != nil {
			return nil, err
		}
		if x == 0 {
			set(1)
		} else {
			set(0)
		}
	case ir.Select:
		c, err := ex.value(in.Args[0])
		if err != nil {
			return nil, err
		}
		var v uint64
		if c != 0 {
			v, err = ex.value(in.Args[1])
		} else {
			v, err = ex.value(in.Args[2])
		}
		if err != nil {
			return nil, err
		}
		set(v)
	case ir.Convert:
		x, err := ex.value(in.Args[0])
		if err != nil {
			return nil, err
		}
		set(x)
	case ir.WinLoad:
		idx, err := ex.value(in.Args[0])
		if err != nil {
			return nil, err
		}
		slot := paramSlot(ex.f, in.Param)
		if slot < 0 || slot >= len(ex.win.Data) {
			return nil, fmt.Errorf("window param %s not bound", in.Param.Nm)
		}
		d := ex.win.Data[slot]
		if int(idx) >= len(d) {
			return nil, fmt.Errorf("window element %d out of range (param %s has %d)", idx, in.Param.Nm, len(d))
		}
		set(d[idx])
	case ir.WinStore:
		idx, err := ex.value(in.Args[0])
		if err != nil {
			return nil, err
		}
		v, err := ex.value(in.Args[1])
		if err != nil {
			return nil, err
		}
		slot := paramSlot(ex.f, in.Param)
		if slot < 0 || slot >= len(ex.win.Data) {
			return nil, fmt.Errorf("window param %s not bound", in.Param.Nm)
		}
		d := ex.win.Data[slot]
		if int(idx) >= len(d) {
			return nil, fmt.Errorf("window element %d out of range", idx)
		}
		d[idx] = in.Param.ElemType().Normalize(v)
	case ir.ExtLoad:
		idx, err := ex.value(in.Args[0])
		if err != nil {
			return nil, err
		}
		slot := paramSlot(ex.f, in.Param)
		if slot < 0 || slot >= len(ex.win.Ext) {
			return nil, fmt.Errorf("ext param %s not bound", in.Param.Nm)
		}
		d := ex.win.Ext[slot]
		if int(idx) >= len(d) {
			return nil, fmt.Errorf("host memory index %d out of range (%s has %d)", idx, in.Param.Nm, len(d))
		}
		set(d[idx])
	case ir.ExtStore:
		idx, err := ex.value(in.Args[0])
		if err != nil {
			return nil, err
		}
		v, err := ex.value(in.Args[1])
		if err != nil {
			return nil, err
		}
		slot := paramSlot(ex.f, in.Param)
		if slot < 0 || slot >= len(ex.win.Ext) {
			return nil, fmt.Errorf("ext param %s not bound", in.Param.Nm)
		}
		d := ex.win.Ext[slot]
		if int(idx) >= len(d) {
			return nil, fmt.Errorf("host memory index %d out of range (%s has %d)", idx, in.Param.Nm, len(d))
		}
		d[idx] = in.Param.ElemType().Normalize(v)
	case ir.RegLoad:
		idx, err := ex.value(in.Args[0])
		if err != nil {
			return nil, err
		}
		r, ok := ex.st.Regs[in.Global]
		if !ok {
			return nil, fmt.Errorf("global %s not in state", in.Global.Name)
		}
		if int(idx) >= len(r) {
			return nil, fmt.Errorf("register index %d out of range (%s has %d)", idx, in.Global.Name, len(r))
		}
		set(r[idx])
	case ir.RegStore:
		idx, err := ex.value(in.Args[0])
		if err != nil {
			return nil, err
		}
		v, err := ex.value(in.Args[1])
		if err != nil {
			return nil, err
		}
		r, ok := ex.st.Regs[in.Global]
		if !ok {
			return nil, fmt.Errorf("global %s not in state", in.Global.Name)
		}
		if int(idx) >= len(r) {
			return nil, fmt.Errorf("register index %d out of range (%s has %d)", idx, in.Global.Name, len(r))
		}
		r[idx] = in.Global.ElemType().Normalize(v)
	case ir.MapFound:
		key, err := ex.value(in.Args[0])
		if err != nil {
			return nil, err
		}
		_, found := ex.st.Maps[in.Global][key]
		set(boolVal(found))
	case ir.MapValue:
		key, err := ex.value(in.Args[0])
		if err != nil {
			return nil, err
		}
		set(ex.st.Maps[in.Global][key]) // zero when absent; guarded by MapFound
	case ir.BloomAdd:
		key, err := ex.value(in.Args[0])
		if err != nil {
			return nil, err
		}
		bits := ex.st.Blooms[in.Global]
		for h := 0; h < in.Global.Type.Hashes; h++ {
			b := BloomBit(key, h, in.Global.Type.Bits)
			bits[b/64] |= 1 << (b % 64)
		}
	case ir.BloomTest:
		key, err := ex.value(in.Args[0])
		if err != nil {
			return nil, err
		}
		bits := ex.st.Blooms[in.Global]
		all := true
		for h := 0; h < in.Global.Type.Hashes; h++ {
			b := BloomBit(key, h, in.Global.Type.Bits)
			if bits[b/64]&(1<<(b%64)) == 0 {
				all = false
				break
			}
		}
		set(boolVal(all))
	case ir.SketchAdd:
		key, err := ex.value(in.Args[0])
		if err != nil {
			return nil, err
		}
		amt, err := ex.value(in.Args[1])
		if err != nil {
			return nil, err
		}
		rows, cols := in.Global.Type.Hashes, in.Global.Type.Bits
		sk := ex.st.Sketches[in.Global]
		for r := 0; r < rows; r++ {
			col := BloomBit(key, r, cols)
			idx := r*cols + col
			sk[idx] = types.U32.Normalize(sk[idx] + amt)
		}
	case ir.SketchEst:
		key, err := ex.value(in.Args[0])
		if err != nil {
			return nil, err
		}
		rows, cols := in.Global.Type.Hashes, in.Global.Type.Bits
		sk := ex.st.Sketches[in.Global]
		est := ^uint64(0)
		for r := 0; r < rows; r++ {
			v := sk[r*cols+BloomBit(key, r, cols)]
			if v < est {
				est = v
			}
		}
		set(est)
	case ir.WinMeta:
		set(ex.win.Meta[in.Field])
	case ir.LocMeta:
		set(uint64(ex.win.Loc))
	case ir.Fwd:
		switch in.Field {
		case "pass":
			ex.dec = Decision{Kind: Pass, Label: in.Label}
		case "drop":
			ex.dec = Decision{Kind: Drop}
		case "reflect":
			ex.dec = Decision{Kind: Reflect}
		case "bcast":
			ex.dec = Decision{Kind: Bcast}
		}
	case ir.Br:
		return in.Target, nil
	case ir.CondBr:
		c, err := ex.value(in.Args[0])
		if err != nil {
			return nil, err
		}
		if c != 0 {
			return in.Target, nil
		}
		return in.Else, nil
	case ir.Ret:
		return nil, nil
	default:
		return nil, fmt.Errorf("unexecutable op %s", in.Op)
	}
	return nil, nil
}

func boolVal(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// EvalBin evaluates a binary arithmetic op with NCL runtime semantics:
// wraparound arithmetic, division/modulo by zero yields 0 (hardware-like,
// documented in DESIGN.md §5), shifts masked to the width.
func EvalBin(kind token.Kind, x, y uint64, t *types.Type) uint64 {
	switch kind {
	case token.DIV:
		if y == 0 {
			return 0
		}
	case token.MOD:
		if y == 0 {
			return 0
		}
	}
	if v, ok := sema.EvalArith(kind, x, y, t); ok {
		return v
	}
	return 0
}

// EvalCmp evaluates a comparison over canonical values typed by argTy.
func EvalCmp(kind token.Kind, x, y uint64, argTy *types.Type) uint64 {
	signed := argTy.Kind == types.Int && argTy.Signed
	var b bool
	if signed {
		sx, sy := int64(x), int64(y)
		switch kind {
		case token.EQ:
			b = sx == sy
		case token.NE:
			b = sx != sy
		case token.LT:
			b = sx < sy
		case token.GT:
			b = sx > sy
		case token.LE:
			b = sx <= sy
		case token.GE:
			b = sx >= sy
		}
	} else {
		switch kind {
		case token.EQ:
			b = x == y
		case token.NE:
			b = x != y
		case token.LT:
			b = x < y
		case token.GT:
			b = x > y
		case token.LE:
			b = x <= y
		case token.GE:
			b = x >= y
		}
	}
	return boolVal(b)
}

// BloomBit computes the bit index for hash round h of key, shared by the
// interpreter and the PISA simulator so Bloom semantics agree everywhere.
func BloomBit(key uint64, h int, bits int) int {
	f := fnv.New64a()
	var buf [9]byte
	buf[0] = byte(h)
	for i := 0; i < 8; i++ {
		buf[1+i] = byte(key >> (8 * i))
	}
	f.Write(buf[:])
	return int(f.Sum64() % uint64(bits))
}
