package interp

import (
	"strings"
	"testing"

	"ncl/internal/ncl/ir"
	"ncl/internal/ncl/token"
	"ncl/internal/ncl/types"
)

// handFunc builds a one-block kernel from the given instructions.
func handFunc(kind ir.FuncKind, params []*ir.Param, build func(b *ir.Block)) *ir.Func {
	f := &ir.Func{Name: "h", Kind: kind, WindowLen: 2, Params: params}
	blk := f.NewBlock("entry")
	build(blk)
	blk.Append(&ir.Instr{Op: ir.Ret})
	return f
}

func TestSelectOp(t *testing.T) {
	p := &ir.Param{Nm: "d", Ty: types.PointerTo(types.I32)}
	f := handFunc(ir.OutKernel, []*ir.Param{p}, func(b *ir.Block) {
		c := b.Append(&ir.Instr{Op: ir.Cmp, Ty: types.BoolType, Kind: token.GT,
			Args: []ir.Value{ir.ConstOf(types.I32, 5), ir.ConstOf(types.I32, 3)}})
		s := b.Append(&ir.Instr{Op: ir.Select, Ty: types.I32,
			Args: []ir.Value{c, ir.ConstOf(types.I32, 10), ir.ConstOf(types.I32, 20)}})
		b.Append(&ir.Instr{Op: ir.WinStore, Param: p, Args: []ir.Value{ir.ConstOf(types.U32, 0), s}})
	})
	win := NewWindow(f)
	if _, err := Exec(f, &State{}, win); err != nil {
		t.Fatal(err)
	}
	if win.Data[0][0] != 10 {
		t.Errorf("select = %d, want 10", win.Data[0][0])
	}
}

func TestWindowElementOutOfRange(t *testing.T) {
	p := &ir.Param{Nm: "d", Ty: types.PointerTo(types.I32)}
	f := handFunc(ir.OutKernel, []*ir.Param{p}, func(b *ir.Block) {
		b.Append(&ir.Instr{Op: ir.WinLoad, Ty: types.I32, Param: p, Args: []ir.Value{ir.ConstOf(types.U32, 9)}})
	})
	win := NewWindow(f)
	if _, err := Exec(f, &State{}, win); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("OOB window read must trap: %v", err)
	}
}

func TestExtUnboundTraps(t *testing.T) {
	d := &ir.Param{Nm: "d", Ty: types.PointerTo(types.I32)}
	e := &ir.Param{Nm: "h", Ty: types.PointerTo(types.I32), Ext: true}
	f := handFunc(ir.InKernel, []*ir.Param{d, e}, func(b *ir.Block) {
		b.Append(&ir.Instr{Op: ir.ExtLoad, Ty: types.I32, Param: e, Args: []ir.Value{ir.ConstOf(types.U32, 0)}})
	})
	win := NewWindow(f) // Ext left nil
	if _, err := Exec(f, &State{}, win); err == nil || !strings.Contains(err.Error(), "not bound") {
		t.Fatalf("unbound ext must trap: %v", err)
	}
	win2 := NewWindow(f)
	win2.Ext = [][]uint64{{0}}
	f2 := handFunc(ir.InKernel, []*ir.Param{d, e}, func(b *ir.Block) {
		b.Append(&ir.Instr{Op: ir.ExtStore, Param: e, Args: []ir.Value{ir.ConstOf(types.U32, 5), ir.ConstOf(types.I32, 1)}})
	})
	if _, err := Exec(f2, &State{}, win2); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("ext OOB store must trap: %v", err)
	}
}

func TestMissingGlobalStateTraps(t *testing.T) {
	g := &ir.Global{Name: "ghost", Type: types.ArrayOf(types.I32, 4)}
	p := &ir.Param{Nm: "d", Ty: types.PointerTo(types.I32)}
	f := handFunc(ir.OutKernel, []*ir.Param{p}, func(b *ir.Block) {
		b.Append(&ir.Instr{Op: ir.RegLoad, Ty: types.I32, Global: g, Args: []ir.Value{ir.ConstOf(types.U32, 0)}})
	})
	if _, err := Exec(f, &State{Regs: map[*ir.Global][]uint64{}}, NewWindow(f)); err == nil {
		t.Fatal("missing global must trap")
	}
}

func TestCtrlWriteErrors(t *testing.T) {
	g := &ir.Global{Name: "n", Type: types.U32, Ctrl: true}
	st := &State{Regs: map[*ir.Global][]uint64{}, Maps: map[*ir.Global]map[uint64]uint64{}}
	if err := st.CtrlWrite(g, 0, 1); err == nil {
		t.Error("ctrl write to unallocated global must fail")
	}
	st.AddGlobal(g)
	if err := st.CtrlWrite(g, 5, 1); err == nil {
		t.Error("ctrl write out of range must fail")
	}
	if err := st.CtrlWrite(g, 0, 7); err != nil {
		t.Fatal(err)
	}
	if st.Regs[g][0] != 7 {
		t.Error("ctrl write lost")
	}
}

func TestMapInsertOnNonMap(t *testing.T) {
	g := &ir.Global{Name: "a", Type: types.ArrayOf(types.I32, 4)}
	st := &State{Regs: map[*ir.Global][]uint64{}, Maps: map[*ir.Global]map[uint64]uint64{}}
	st.AddGlobal(g)
	if err := st.MapInsert(g, 1, 1); err == nil {
		t.Error("MapInsert on an array must fail")
	}
	st.MapDelete(g, 1) // no-op, must not panic
}

func TestDecisionKindString(t *testing.T) {
	for k, want := range map[DecisionKind]string{Pass: "pass", Drop: "drop", Reflect: "reflect", Bcast: "bcast"} {
		if k.String() != want {
			t.Errorf("%v", k)
		}
	}
	if DecisionKind(9).String() != "?" {
		t.Error("unknown decision kind")
	}
}

func TestPhiFromWrongEdgeTraps(t *testing.T) {
	// A φ whose predecessor list doesn't include the actual arrival edge
	// must be an interpreter error, not silence.
	p := &ir.Param{Nm: "d", Ty: types.PointerTo(types.I32)}
	f := &ir.Func{Name: "bad", Kind: ir.OutKernel, WindowLen: 1, Params: []*ir.Param{p}}
	entry := f.NewBlock("entry")
	next := f.NewBlock("next")
	entry.Append(&ir.Instr{Op: ir.Br, Target: next})
	// Deliberately wrong: preds list omits entry.
	phi := next.Append(&ir.Instr{Op: ir.Phi, Ty: types.I32, Args: []ir.Value{}})
	_ = phi
	next.Append(&ir.Instr{Op: ir.Ret})
	if _, err := Exec(f, &State{}, NewWindow(f)); err == nil {
		t.Fatal("mismatched φ must trap")
	}
}
