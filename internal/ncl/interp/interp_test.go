package interp

import (
	"testing"

	"ncl/internal/ncl/ir"
	"ncl/internal/ncl/lower"
	"ncl/internal/ncl/parser"
	"ncl/internal/ncl/sema"
	"ncl/internal/ncl/source"
)

// compile runs the frontend + lowering.
func compile(t *testing.T, src string, w int) *ir.Module {
	t.Helper()
	var diags source.DiagList
	f := parser.ParseSource("test.ncl", src, &diags)
	info := sema.Check(f, &diags)
	if diags.HasErrors() {
		t.Fatalf("frontend errors: %v", diags.Err())
	}
	m := lower.Lower("test", info, w, &diags)
	if diags.HasErrors() {
		t.Fatalf("lowering errors: %v", diags.Err())
	}
	if err := ir.Verify(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return m
}

func TestArithmeticKernel(t *testing.T) {
	m := compile(t, `
_net_ _out_ void k(int *d) {
    d[0] = d[0] * 2 + d[1];
    d[1] = d[0] - 1;
}
`, 2)
	f := m.FuncByName("k")
	st := NewState(m)
	win := NewWindow(f)
	win.Data[0][0] = 10
	win.Data[0][1] = 3
	dec, err := Exec(f, st, win)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Kind != Pass {
		t.Errorf("default decision must be pass, got %v", dec.Kind)
	}
	if win.Data[0][0] != 23 || win.Data[0][1] != 22 {
		t.Errorf("data = %v, want [23 22]", win.Data[0])
	}
}

func TestSignedArithmetic(t *testing.T) {
	m := compile(t, `
_net_ _out_ void k(int *d) {
    if (d[0] < 0) d[1] = -d[0];
    d[2] = d[0] / d[1];
    d[3] = d[0] % 3;
}
`, 4)
	f := m.FuncByName("k")
	st := NewState(m)
	win := NewWindow(f)
	win.Data[0][0] = ^uint64(0) - 6 // -7 canonical
	win.Data[0][1] = 99
	if _, err := Exec(f, st, win); err != nil {
		t.Fatal(err)
	}
	if int64(win.Data[0][1]) != 7 {
		t.Errorf("negation: got %d, want 7", int64(win.Data[0][1]))
	}
	if int64(win.Data[0][2]) != -1 {
		t.Errorf("signed division: got %d, want -1", int64(win.Data[0][2]))
	}
	if int64(win.Data[0][3]) != -1 {
		t.Errorf("signed modulo: got %d, want -1 (C semantics)", int64(win.Data[0][3]))
	}
}

func TestDivisionByZeroYieldsZero(t *testing.T) {
	m := compile(t, `
_net_ _out_ void k(int *d) { d[0] = d[1] / d[2]; d[3] = d[1] % d[2]; }
`, 4)
	f := m.FuncByName("k")
	win := NewWindow(f)
	win.Data[0][1] = 42
	win.Data[0][2] = 0
	if _, err := Exec(f, NewState(m), win); err != nil {
		t.Fatal(err)
	}
	if win.Data[0][0] != 0 || win.Data[0][3] != 0 {
		t.Errorf("x/0 and x%%0 must be 0, got %d and %d", win.Data[0][0], win.Data[0][3])
	}
}

func TestRegisterState(t *testing.T) {
	m := compile(t, `
_net_ unsigned total;
_net_ unsigned hist[4] = {0};
_net_ _out_ void k(unsigned v) {
    total += v;
    hist[v % 4] += 1;
}
`, 1)
	f := m.FuncByName("k")
	st := NewState(m)
	for _, v := range []uint64{1, 5, 2, 9} {
		win := NewWindow(f)
		win.Data[0][0] = v
		if _, err := Exec(f, st, win); err != nil {
			t.Fatal(err)
		}
	}
	total := m.GlobalByName("total")
	hist := m.GlobalByName("hist")
	if st.Regs[total][0] != 17 {
		t.Errorf("total = %d, want 17", st.Regs[total][0])
	}
	want := []uint64{0, 3, 1, 0}
	for i, w := range want {
		if st.Regs[hist][i] != w {
			t.Errorf("hist[%d] = %d, want %d", i, st.Regs[hist][i], w)
		}
	}
}

func TestGlobalInitializersApplied(t *testing.T) {
	m := compile(t, `
_net_ int seeds[3] = {7, 8, 9};
_net_ _out_ void k(int *d) { d[0] = seeds[2]; }
`, 1)
	f := m.FuncByName("k")
	win := NewWindow(f)
	if _, err := Exec(f, NewState(m), win); err != nil {
		t.Fatal(err)
	}
	if win.Data[0][0] != 9 {
		t.Errorf("init read = %d, want 9", win.Data[0][0])
	}
}

func TestForwardingDecisions(t *testing.T) {
	m := compile(t, `
_net_ _out_ void k(int *d) {
    if (d[0] == 0) _drop();
    else if (d[0] == 1) _reflect();
    else if (d[0] == 2) _bcast();
    else if (d[0] == 3) _pass("server");
}
`, 1)
	f := m.FuncByName("k")
	cases := []struct {
		in    uint64
		kind  DecisionKind
		label string
	}{
		{0, Drop, ""}, {1, Reflect, ""}, {2, Bcast, ""}, {3, Pass, "server"}, {9, Pass, ""},
	}
	for _, c := range cases {
		win := NewWindow(f)
		win.Data[0][0] = c.in
		dec, err := Exec(f, NewState(m), win)
		if err != nil {
			t.Fatal(err)
		}
		if dec.Kind != c.kind || dec.Label != c.label {
			t.Errorf("input %d: decision %v/%q, want %v/%q", c.in, dec.Kind, dec.Label, c.kind, c.label)
		}
	}
}

func TestLastForwardingDecisionWins(t *testing.T) {
	m := compile(t, `
_net_ _out_ void k(int *d) { _drop(); if (d[0]) _bcast(); }
`, 1)
	f := m.FuncByName("k")
	win := NewWindow(f)
	win.Data[0][0] = 1
	dec, _ := Exec(f, NewState(m), win)
	if dec.Kind != Bcast {
		t.Errorf("later decision must win, got %v", dec.Kind)
	}
	win2 := NewWindow(f)
	dec2, _ := Exec(f, NewState(m), win2)
	if dec2.Kind != Drop {
		t.Errorf("untaken branch must not override, got %v", dec2.Kind)
	}
}

func TestMapOperations(t *testing.T) {
	m := compile(t, `
_net_ ncl::Map<uint64_t, uint8_t, 4> M;
_net_ bool Valid[4] = {false};
_net_ _out_ void k(uint64_t key, bool *hit) {
    if (auto *idx = M[key]) {
        hit[0] = Valid[*idx];
    } else {
        hit[0] = false;
    }
}
`, 1)
	f := m.FuncByName("k")
	st := NewState(m)
	mg := m.GlobalByName("M")
	vg := m.GlobalByName("Valid")
	if err := st.MapInsert(mg, 42, 2); err != nil {
		t.Fatal(err)
	}
	st.Regs[vg][2] = 1

	run := func(key uint64) uint64 {
		win := NewWindow(f)
		win.Data[0][0] = key
		if _, err := Exec(f, st, win); err != nil {
			t.Fatal(err)
		}
		return win.Data[1][0]
	}
	if run(42) != 1 {
		t.Error("present valid key must hit")
	}
	if run(7) != 0 {
		t.Error("absent key must miss")
	}
	st.MapDelete(mg, 42)
	if run(42) != 0 {
		t.Error("deleted key must miss")
	}
}

func TestMapCapacity(t *testing.T) {
	m := compile(t, `
_net_ ncl::Map<uint64_t, uint8_t, 2> M;
_net_ _out_ void k(uint64_t key) { if (auto *i = M[key]) {} }
`, 1)
	st := NewState(m)
	g := m.GlobalByName("M")
	if err := st.MapInsert(g, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := st.MapInsert(g, 2, 2); err != nil {
		t.Fatal(err)
	}
	if err := st.MapInsert(g, 3, 3); err == nil {
		t.Error("inserting past capacity must fail")
	}
	// Overwriting an existing key is fine at capacity.
	if err := st.MapInsert(g, 1, 9); err != nil {
		t.Errorf("overwrite at capacity failed: %v", err)
	}
}

func TestBloomSemantics(t *testing.T) {
	m := compile(t, `
_net_ ncl::Bloom<1024, 3> seen;
_net_ _out_ void k(uint64_t key, bool *dup) {
    dup[0] = seen.test(key);
    seen.add(key);
}
`, 1)
	f := m.FuncByName("k")
	st := NewState(m)
	run := func(key uint64) uint64 {
		win := NewWindow(f)
		win.Data[0][0] = key
		if _, err := Exec(f, st, win); err != nil {
			t.Fatal(err)
		}
		return win.Data[1][0]
	}
	if run(100) != 0 {
		t.Error("first sighting must not be a duplicate")
	}
	if run(100) != 1 {
		t.Error("second sighting must be a duplicate (no false negatives)")
	}
	// Different keys are very unlikely to collide in a 1024-bit filter
	// with 3 hashes after a single insertion.
	if run(2000) != 0 {
		t.Error("unexpected false positive for a nearly-empty filter")
	}
}

func TestCtrlVariableVisibleAfterWrite(t *testing.T) {
	m := compile(t, `
_net_ _at_("s1") _ctrl_ unsigned n;
_net_ _out_ void k(unsigned *d) { d[0] = n; }
`, 1)
	f := m.FuncByName("k")
	st := NewState(m)
	g := m.GlobalByName("n")
	if err := st.CtrlWrite(g, 0, 16); err != nil {
		t.Fatal(err)
	}
	win := NewWindow(f)
	if _, err := Exec(f, st, win); err != nil {
		t.Fatal(err)
	}
	if win.Data[0][0] != 16 {
		t.Errorf("ctrl read = %d, want 16", win.Data[0][0])
	}
}

func TestWindowMetadata(t *testing.T) {
	m := compile(t, `
_net_ _win_ unsigned chunk;
_net_ _out_ void k(unsigned *d) {
    d[0] = window.seq;
    d[1] = window.from;
    d[2] = window.chunk;
    d[3] = (unsigned)location.id;
}
`, 4)
	f := m.FuncByName("k")
	win := NewWindow(f)
	win.Meta["seq"] = 5
	win.Meta["from"] = 2
	win.Meta["chunk"] = 77
	win.Loc = 9
	if _, err := Exec(f, NewState(m), win); err != nil {
		t.Fatal(err)
	}
	want := []uint64{5, 2, 77, 9}
	for i, w := range want {
		if win.Data[0][i] != w {
			t.Errorf("meta[%d] = %d, want %d", i, win.Data[0][i], w)
		}
	}
}

func TestOutOfRangeRegisterTraps(t *testing.T) {
	m := compile(t, `
_net_ int a[4] = {0};
_net_ _out_ void k(unsigned *d) { a[d[0]] = 1; }
`, 1)
	f := m.FuncByName("k")
	win := NewWindow(f)
	win.Data[0][0] = 100
	if _, err := Exec(f, NewState(m), win); err == nil {
		t.Error("out-of-range register access must trap")
	}
}

// TestFig4AllReduceSemantics executes the paper's AllReduce kernel (Fig. 4)
// for two workers and one window and checks the aggregation protocol:
// first worker's window is dropped (absorbed), second triggers a broadcast
// carrying the sums, and the slot resets for reuse.
func TestFig4AllReduceSemantics(t *testing.T) {
	const W = 4
	m := compile(t, `
_net_ _at_("s1") int accum[64] = {0};
_net_ _at_("s1") unsigned count[16] = {0};
_net_ _at_("s1") _ctrl_ unsigned nworkers;

_net_ _out_ void allreduce(int *data) {
    unsigned base = window.seq * window.len;
    for (unsigned i = 0; i < window.len; ++i)
        accum[base + i] += data[i];
    if (++count[window.seq] == nworkers) {
        memcpy(data, &accum[base], window.len * 4);
        count[window.seq] = 0; _bcast();
    } else { _drop(); }
}
`, W)
	f := m.FuncByName("allreduce")
	st := NewState(m)
	if err := st.CtrlWrite(m.GlobalByName("nworkers"), 0, 2); err != nil {
		t.Fatal(err)
	}

	send := func(seq uint64, vals []uint64) (*Window, Decision) {
		win := NewWindow(f)
		copy(win.Data[0], vals)
		win.Meta["seq"] = seq
		dec, err := Exec(f, st, win)
		if err != nil {
			t.Fatal(err)
		}
		return win, dec
	}

	// Worker 1 sends {1,2,3,4} for slot 0: absorbed.
	_, dec1 := send(0, []uint64{1, 2, 3, 4})
	if dec1.Kind != Drop {
		t.Fatalf("first contribution must be dropped, got %v", dec1.Kind)
	}
	// Worker 2 sends {10,20,30,40}: completes the slot, broadcasts sums.
	win2, dec2 := send(0, []uint64{10, 20, 30, 40})
	if dec2.Kind != Bcast {
		t.Fatalf("completing contribution must broadcast, got %v", dec2.Kind)
	}
	want := []uint64{11, 22, 33, 44}
	for i, w := range want {
		if win2.Data[0][i] != w {
			t.Errorf("sum[%d] = %d, want %d", i, win2.Data[0][i], w)
		}
	}
	// Slot 0's counter reset: the next pair for seq 0 aggregates afresh...
	cg := m.GlobalByName("count")
	if st.Regs[cg][0] != 0 {
		t.Errorf("count[0] = %d, want 0 after reset", st.Regs[cg][0])
	}
	// ...but accum still holds the old sums (the paper's kernel relies on
	// fresh slots per sequence number within an invocation round).
	ag := m.GlobalByName("accum")
	if st.Regs[ag][0] != 11 {
		t.Errorf("accum[0] = %d, want 11", st.Regs[ag][0])
	}
}

// TestFig5CacheSemantics executes the paper's KVS-cache kernel (Fig. 5):
// GET misses pass to the server, server updates install values, GET hits
// reflect with the cached value, PUTs invalidate.
func TestFig5CacheSemantics(t *testing.T) {
	const VAL = 8 // value bytes (shortened from the paper's 128 for the test)
	m := compile(t, `
#define SERVER 1
_net_ _at_("s1") ncl::Map<uint64_t, uint8_t, 16> Idx;
_net_ _at_("s1") char Cache[16][8] = {{0}};
_net_ _at_("s1") bool Valid[16] = {false};

_net_ _out_ void query(uint64_t key, char *val, bool update) {
    if (window.from != SERVER && update) {
        if (auto *idx = Idx[key]) Valid[*idx] = false;
    } else if (window.from != SERVER) {
        if (auto *idx = Idx[key]) {
            if (Valid[*idx]) {
                memcpy(val, Cache[*idx], 8); _reflect(); } }
    } else if (update) {
        auto *idx = Idx[key]; memcpy(Cache[*idx], val, 8);
        Valid[*idx] = true; _drop();
    } else { }
}
`, VAL)
	f := m.FuncByName("query")
	st := NewState(m)
	idxMap := m.GlobalByName("Idx")

	// The storage server first installs key 7 at cache slot 3 (control
	// plane), then sends an update window with the value bytes.
	if err := st.MapInsert(idxMap, 7, 3); err != nil {
		t.Fatal(err)
	}
	exec := func(key uint64, val []uint64, update bool, from uint64) (*Window, Decision) {
		win := NewWindow(f)
		win.Data[0][0] = key
		copy(win.Data[1], val)
		if update {
			win.Data[2][0] = 1
		}
		win.Meta["from"] = from
		dec, err := Exec(f, st, win)
		if err != nil {
			t.Fatal(err)
		}
		return win, dec
	}

	// 1. Client GET before install: pass through to the server.
	_, dec := exec(7, make([]uint64, VAL), false, 0)
	if dec.Kind != Pass {
		t.Fatalf("miss must pass to the server, got %v", dec.Kind)
	}

	// 2. Server update: writes the value, validates, drops.
	valBytes := []uint64{0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x78}
	_, dec = exec(7, valBytes, true, 1)
	if dec.Kind != Drop {
		t.Fatalf("server update must drop, got %v", dec.Kind)
	}

	// 3. Client GET: hit, reflected with the cached value.
	win, dec2 := exec(7, make([]uint64, VAL), false, 0)
	if dec2.Kind != Reflect {
		t.Fatalf("hit must reflect, got %v", dec2.Kind)
	}
	for i, b := range valBytes {
		if win.Data[1][i] != b {
			t.Errorf("cached byte %d = %#x, want %#x", i, win.Data[1][i], b)
		}
	}

	// 4. Client PUT: invalidates and passes to the server.
	_, dec3 := exec(7, valBytes, true, 0)
	if dec3.Kind != Pass {
		t.Fatalf("client PUT must pass to the server, got %v", dec3.Kind)
	}

	// 5. Client GET after invalidation: miss again.
	_, dec4 := exec(7, make([]uint64, VAL), false, 0)
	if dec4.Kind != Pass {
		t.Fatalf("invalidated key must miss, got %v", dec4.Kind)
	}
}

// TestFig4InKernel executes the incoming kernel of Fig. 4 and checks host
// memory writes through _ext_ parameters.
func TestFig4InKernel(t *testing.T) {
	const W = 4
	m := compile(t, `
_net_ _in_ void result(int *data, _ext_ int *hdata, _ext_ bool *done) {
    for (unsigned i = 0; i < window.len; ++i)
        hdata[window.seq * window.len + i] = data[i];
    *done = true;
}
`, W)
	f := m.FuncByName("result")
	hdata := make([]uint64, 16)
	done := make([]uint64, 1)
	win := NewWindow(f)
	win.Ext = [][]uint64{hdata, done}
	copy(win.Data[0], []uint64{9, 8, 7, 6})
	win.Meta["seq"] = 2
	if _, err := Exec(f, NewState(m), win); err != nil {
		t.Fatal(err)
	}
	want := []uint64{9, 8, 7, 6}
	for i, w := range want {
		if hdata[8+i] != w {
			t.Errorf("hdata[%d] = %d, want %d", 8+i, hdata[8+i], w)
		}
	}
	if done[0] != 1 {
		t.Error("done flag not set")
	}
}
