// Package ast defines the abstract syntax tree for NCL programs: a C
// subset extended with the paper's declaration specifiers (_net_, _out_,
// _in_, _ctrl_, _at_("label"), _ext_, _win_) and the ncl:: template types
// (Map, Bloom). The tree is deliberately close to C's grammar so the
// paper's Figs. 4-5 parse verbatim.
package ast

import (
	"ncl/internal/ncl/source"
	"ncl/internal/ncl/token"
)

// Node is implemented by every AST node.
type Node interface {
	Pos() source.Pos
}

// Expr is implemented by expression nodes.
type Expr interface {
	Node
	exprNode()
}

// Stmt is implemented by statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

// Decl is implemented by top-level declarations.
type Decl interface {
	Node
	declNode()
}

// ---------------------------------------------------------------------------
// Expressions

// Ident is a plain identifier reference.
type Ident struct {
	NamePos source.Pos
	Name    string
}

// IntLit is an integer literal (decimal or hex; value already parsed).
type IntLit struct {
	LitPos source.Pos
	Value  uint64
	Text   string
}

// BoolLit is true or false.
type BoolLit struct {
	LitPos source.Pos
	Value  bool
}

// StringLit is a string literal; in NCL these only appear as _at_/_pass
// location labels.
type StringLit struct {
	LitPos source.Pos
	Value  string
}

// Unary is a prefix or postfix unary operation. Op is one of
// ADD SUB NOT TILDE MUL AND INC DEC; Postfix is set for x++ / x--.
type Unary struct {
	OpPos   source.Pos
	Op      token.Kind
	X       Expr
	Postfix bool
}

// Binary is a binary operation (arithmetic, bitwise, comparison, logical).
type Binary struct {
	Op   token.Kind
	X, Y Expr
}

// Assign is simple or compound assignment; Op is ASSIGN or op-ASSIGN.
type Assign struct {
	Op       token.Kind
	LHS, RHS Expr
}

// Cond is the ternary conditional c ? a : b.
type Cond struct {
	C, Then, Else Expr
}

// Index is array/map subscripting x[i].
type Index struct {
	X, Idx Expr
}

// Member is field selection x.sel (Arrow for x->sel).
type Member struct {
	X      Expr
	Sel    string
	Arrow  bool
	SelPos source.Pos
}

// Call is a function call. Fun is an Ident for everything NCL supports
// (builtins and forwarding primitives).
type Call struct {
	Fun    Expr
	Args   []Expr
	LParen source.Pos
}

// Cast is an explicit C-style cast (T)x.
type Cast struct {
	LParen source.Pos
	To     TypeExpr
	X      Expr
}

// SizeofType is sizeof(T); sizeof(expr) is normalized to this by the
// parser when the operand is a type, otherwise stays a Unary-like SizeofExpr.
type SizeofType struct {
	KwPos source.Pos
	To    TypeExpr
}

// SizeofExpr is sizeof expr.
type SizeofExpr struct {
	KwPos source.Pos
	X     Expr
}

// InitList is a braced initializer {a, b, ...} possibly nested.
type InitList struct {
	LBrace source.Pos
	Elems  []Expr
}

func (x *Ident) Pos() source.Pos     { return x.NamePos }
func (x *IntLit) Pos() source.Pos    { return x.LitPos }
func (x *BoolLit) Pos() source.Pos   { return x.LitPos }
func (x *StringLit) Pos() source.Pos { return x.LitPos }
func (x *Unary) Pos() source.Pos {
	if x.Postfix && x.X != nil {
		return x.X.Pos()
	}
	return x.OpPos
}
func (x *Binary) Pos() source.Pos     { return x.X.Pos() }
func (x *Assign) Pos() source.Pos     { return x.LHS.Pos() }
func (x *Cond) Pos() source.Pos       { return x.C.Pos() }
func (x *Index) Pos() source.Pos      { return x.X.Pos() }
func (x *Member) Pos() source.Pos     { return x.X.Pos() }
func (x *Call) Pos() source.Pos       { return x.Fun.Pos() }
func (x *Cast) Pos() source.Pos       { return x.LParen }
func (x *SizeofType) Pos() source.Pos { return x.KwPos }
func (x *SizeofExpr) Pos() source.Pos { return x.KwPos }
func (x *InitList) Pos() source.Pos   { return x.LBrace }

func (*Ident) exprNode()      {}
func (*IntLit) exprNode()     {}
func (*BoolLit) exprNode()    {}
func (*StringLit) exprNode()  {}
func (*Unary) exprNode()      {}
func (*Binary) exprNode()     {}
func (*Assign) exprNode()     {}
func (*Cond) exprNode()       {}
func (*Index) exprNode()      {}
func (*Member) exprNode()     {}
func (*Call) exprNode()       {}
func (*Cast) exprNode()       {}
func (*SizeofType) exprNode() {}
func (*SizeofExpr) exprNode() {}
func (*InitList) exprNode()   {}

// ---------------------------------------------------------------------------
// Type expressions (syntactic types; resolved by sema)

// TypeExpr is implemented by syntactic type nodes.
type TypeExpr interface {
	Node
	typeNode()
}

// BaseType is a builtin scalar type or named alias: void, bool, char, int,
// unsigned, auto, uint8_t, int32_t, ... Name is canonicalized spelling.
type BaseType struct {
	NamePos source.Pos
	Name    string
	Const   bool
}

// PointerType is *Elem.
type PointerType struct {
	StarPos source.Pos
	Elem    TypeExpr
}

// ArrayType is Elem[Len]; multi-dimensional arrays nest. Len is a constant
// expression evaluated by sema.
type ArrayType struct {
	Elem TypeExpr
	Len  Expr // nil for unsized [] (only legal on _ext_ params)
}

// TemplateType is an ncl:: standard-library type such as
// ncl::Map<uint64_t, uint8_t, 256> or ncl::Bloom<1024, 3>.
type TemplateType struct {
	NsPos source.Pos
	Name  string    // Map, Bloom
	Args  []TypeArg // type or constant-expression arguments
}

// TypeArg is one template argument: exactly one of Type or Value is set.
type TypeArg struct {
	Type  TypeExpr
	Value Expr
}

func (t *BaseType) Pos() source.Pos     { return t.NamePos }
func (t *PointerType) Pos() source.Pos  { return t.StarPos }
func (t *ArrayType) Pos() source.Pos    { return t.Elem.Pos() }
func (t *TemplateType) Pos() source.Pos { return t.NsPos }

func (*BaseType) typeNode()     {}
func (*PointerType) typeNode()  {}
func (*ArrayType) typeNode()    {}
func (*TemplateType) typeNode() {}

// ---------------------------------------------------------------------------
// Statements

// BlockStmt is { ... }.
type BlockStmt struct {
	LBrace source.Pos
	Stmts  []Stmt
}

// DeclStmt is a local variable declaration statement.
type DeclStmt struct {
	Decl *VarDecl
}

// ExprStmt is an expression used as a statement.
type ExprStmt struct {
	X Expr
}

// EmptyStmt is a lone semicolon.
type EmptyStmt struct {
	SemiPos source.Pos
}

// IfStmt covers both `if (cond)` and the C++-style condition declaration
// used in Fig. 5: `if (auto *idx = Idx[key])`. Exactly one of Cond or
// CondDecl is set; for CondDecl the truth value is the declared variable.
type IfStmt struct {
	KwPos    source.Pos
	Cond     Expr
	CondDecl *VarDecl
	Then     Stmt
	Else     Stmt // may be nil
}

// ForStmt is for (init; cond; post) body. Init may be a *DeclStmt or
// *ExprStmt or nil; Cond/Post may be nil.
type ForStmt struct {
	KwPos source.Pos
	Init  Stmt
	Cond  Expr
	Post  Expr
	Body  Stmt
}

// WhileStmt is while (cond) body.
type WhileStmt struct {
	KwPos source.Pos
	Cond  Expr
	Body  Stmt
}

// ReturnStmt is return [expr];.
type ReturnStmt struct {
	KwPos source.Pos
	X     Expr // nil for bare return
}

// BreakStmt is break;.
type BreakStmt struct{ KwPos source.Pos }

// ContinueStmt is continue;.
type ContinueStmt struct{ KwPos source.Pos }

func (s *BlockStmt) Pos() source.Pos    { return s.LBrace }
func (s *DeclStmt) Pos() source.Pos     { return s.Decl.Pos() }
func (s *ExprStmt) Pos() source.Pos     { return s.X.Pos() }
func (s *EmptyStmt) Pos() source.Pos    { return s.SemiPos }
func (s *IfStmt) Pos() source.Pos       { return s.KwPos }
func (s *ForStmt) Pos() source.Pos      { return s.KwPos }
func (s *WhileStmt) Pos() source.Pos    { return s.KwPos }
func (s *ReturnStmt) Pos() source.Pos   { return s.KwPos }
func (s *BreakStmt) Pos() source.Pos    { return s.KwPos }
func (s *ContinueStmt) Pos() source.Pos { return s.KwPos }

func (*BlockStmt) stmtNode()    {}
func (*DeclStmt) stmtNode()     {}
func (*ExprStmt) stmtNode()     {}
func (*EmptyStmt) stmtNode()    {}
func (*IfStmt) stmtNode()       {}
func (*ForStmt) stmtNode()      {}
func (*WhileStmt) stmtNode()    {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}

// ---------------------------------------------------------------------------
// Declarations

// Specifiers carries the NCL declaration specifiers attached to a
// declaration, in the paper's syntax (§4.1).
type Specifiers struct {
	Net   bool // _net_
	Out   bool // _out_
	In    bool // _in_
	Ctrl  bool // _ctrl_
	Ext   bool // _ext_ (parameters only)
	Win   bool // _win_ (window-struct extension fields)
	Const bool
	At    string // _at_("label"); empty when absent
	AtPos source.Pos
	Pos   source.Pos // position of the first specifier (or of the type)
}

// Any reports whether any NCL-specific specifier is present.
func (s Specifiers) Any() bool {
	return s.Net || s.Out || s.In || s.Ctrl || s.Ext || s.Win || s.At != ""
}

// VarDecl declares a variable: global switch memory, a control variable, a
// window-struct extension field, or a function-local.
type VarDecl struct {
	Specs   Specifiers
	Type    TypeExpr
	Name    string
	NamePos source.Pos
	Init    Expr // may be nil
}

// ParamDecl is one function parameter.
type ParamDecl struct {
	Ext     bool // _ext_: host-memory parameter of an _in_ kernel
	Type    TypeExpr
	Name    string
	NamePos source.Pos
}

// FuncDecl declares a function: an _out_ kernel, an _in_ kernel, or a plain
// helper (callable from kernels, always inlined).
type FuncDecl struct {
	Specs   Specifiers
	Ret     TypeExpr
	Name    string
	NamePos source.Pos
	Params  []*ParamDecl
	Body    *BlockStmt // nil for a declaration without definition (rejected by sema)
}

func (d *VarDecl) Pos() source.Pos {
	if d.Specs.Pos.IsValid() {
		return d.Specs.Pos
	}
	return d.NamePos
}
func (d *FuncDecl) Pos() source.Pos {
	if d.Specs.Pos.IsValid() {
		return d.Specs.Pos
	}
	return d.NamePos
}
func (d *ParamDecl) Pos() source.Pos { return d.NamePos }

func (*VarDecl) declNode()  {}
func (*FuncDecl) declNode() {}

// File is a parsed NCL translation unit.
type File struct {
	Name  string
	Decls []Decl
}

func (f *File) Pos() source.Pos { return source.Pos{File: f.Name, Line: 1, Col: 1} }
