package ast

import (
	"fmt"
	"strings"
)

// Dump renders a node as a compact S-expression, used by parser tests and
// by `nclc -dump-ast`. It is stable output, not NCL syntax.
func Dump(n Node) string {
	var b strings.Builder
	dump(&b, n)
	return b.String()
}

func dump(b *strings.Builder, n Node) {
	switch x := n.(type) {
	case nil:
		b.WriteString("<nil>")

	// Expressions
	case *Ident:
		b.WriteString(x.Name)
	case *IntLit:
		fmt.Fprintf(b, "%d", x.Value)
	case *BoolLit:
		fmt.Fprintf(b, "%v", x.Value)
	case *StringLit:
		fmt.Fprintf(b, "%q", x.Value)
	case *Unary:
		if x.Postfix {
			b.WriteString("(post")
			b.WriteString(x.Op.String())
			b.WriteByte(' ')
			dump(b, x.X)
			b.WriteByte(')')
		} else {
			b.WriteByte('(')
			b.WriteString(x.Op.String())
			b.WriteByte(' ')
			dump(b, x.X)
			b.WriteByte(')')
		}
	case *Binary:
		b.WriteByte('(')
		b.WriteString(x.Op.String())
		b.WriteByte(' ')
		dump(b, x.X)
		b.WriteByte(' ')
		dump(b, x.Y)
		b.WriteByte(')')
	case *Assign:
		b.WriteByte('(')
		b.WriteString(x.Op.String())
		b.WriteByte(' ')
		dump(b, x.LHS)
		b.WriteByte(' ')
		dump(b, x.RHS)
		b.WriteByte(')')
	case *Cond:
		b.WriteString("(?: ")
		dump(b, x.C)
		b.WriteByte(' ')
		dump(b, x.Then)
		b.WriteByte(' ')
		dump(b, x.Else)
		b.WriteByte(')')
	case *Index:
		b.WriteString("(index ")
		dump(b, x.X)
		b.WriteByte(' ')
		dump(b, x.Idx)
		b.WriteByte(')')
	case *Member:
		b.WriteString("(. ")
		dump(b, x.X)
		b.WriteByte(' ')
		b.WriteString(x.Sel)
		b.WriteByte(')')
	case *Call:
		b.WriteString("(call ")
		dump(b, x.Fun)
		for _, a := range x.Args {
			b.WriteByte(' ')
			dump(b, a)
		}
		b.WriteByte(')')
	case *Cast:
		b.WriteString("(cast ")
		dump(b, x.To)
		b.WriteByte(' ')
		dump(b, x.X)
		b.WriteByte(')')
	case *SizeofType:
		b.WriteString("(sizeof-type ")
		dump(b, x.To)
		b.WriteByte(')')
	case *SizeofExpr:
		b.WriteString("(sizeof ")
		dump(b, x.X)
		b.WriteByte(')')
	case *InitList:
		b.WriteString("{")
		for i, e := range x.Elems {
			if i > 0 {
				b.WriteByte(' ')
			}
			dump(b, e)
		}
		b.WriteString("}")

	// Types
	case *BaseType:
		if x.Const {
			b.WriteString("const ")
		}
		b.WriteString(x.Name)
	case *PointerType:
		b.WriteString("*")
		dump(b, x.Elem)
	case *ArrayType:
		b.WriteString("[")
		if x.Len != nil {
			dump(b, x.Len)
		}
		b.WriteString("]")
		dump(b, x.Elem)
	case *TemplateType:
		b.WriteString("ncl::")
		b.WriteString(x.Name)
		b.WriteByte('<')
		for i, a := range x.Args {
			if i > 0 {
				b.WriteByte(',')
			}
			if a.Type != nil {
				dump(b, a.Type)
			} else {
				dump(b, a.Value)
			}
		}
		b.WriteByte('>')

	// Statements
	case *BlockStmt:
		b.WriteString("(block")
		for _, s := range x.Stmts {
			b.WriteByte(' ')
			dump(b, s)
		}
		b.WriteByte(')')
	case *DeclStmt:
		dump(b, x.Decl)
	case *ExprStmt:
		dump(b, x.X)
	case *EmptyStmt:
		b.WriteString("(empty)")
	case *IfStmt:
		b.WriteString("(if ")
		if x.CondDecl != nil {
			dump(b, x.CondDecl)
		} else {
			dump(b, x.Cond)
		}
		b.WriteByte(' ')
		dump(b, x.Then)
		if x.Else != nil {
			b.WriteByte(' ')
			dump(b, x.Else)
		}
		b.WriteByte(')')
	case *ForStmt:
		b.WriteString("(for ")
		if x.Init != nil {
			dump(b, x.Init)
		} else {
			b.WriteString("_")
		}
		b.WriteByte(' ')
		if x.Cond != nil {
			dump(b, x.Cond)
		} else {
			b.WriteString("_")
		}
		b.WriteByte(' ')
		if x.Post != nil {
			dump(b, x.Post)
		} else {
			b.WriteString("_")
		}
		b.WriteByte(' ')
		dump(b, x.Body)
		b.WriteByte(')')
	case *WhileStmt:
		b.WriteString("(while ")
		dump(b, x.Cond)
		b.WriteByte(' ')
		dump(b, x.Body)
		b.WriteByte(')')
	case *ReturnStmt:
		b.WriteString("(return")
		if x.X != nil {
			b.WriteByte(' ')
			dump(b, x.X)
		}
		b.WriteByte(')')
	case *BreakStmt:
		b.WriteString("(break)")
	case *ContinueStmt:
		b.WriteString("(continue)")

	// Declarations
	case *VarDecl:
		b.WriteString("(var ")
		dumpSpecs(b, x.Specs)
		dump(b, x.Type)
		b.WriteByte(' ')
		b.WriteString(x.Name)
		if x.Init != nil {
			b.WriteString(" = ")
			dump(b, x.Init)
		}
		b.WriteByte(')')
	case *ParamDecl:
		if x.Ext {
			b.WriteString("_ext_ ")
		}
		dump(b, x.Type)
		b.WriteByte(' ')
		b.WriteString(x.Name)
	case *FuncDecl:
		b.WriteString("(func ")
		dumpSpecs(b, x.Specs)
		dump(b, x.Ret)
		b.WriteByte(' ')
		b.WriteString(x.Name)
		b.WriteString(" (")
		for i, p := range x.Params {
			if i > 0 {
				b.WriteString(", ")
			}
			dump(b, p)
		}
		b.WriteByte(')')
		if x.Body != nil {
			b.WriteByte(' ')
			dump(b, x.Body)
		}
		b.WriteByte(')')
	case *File:
		b.WriteString("(file")
		for _, d := range x.Decls {
			b.WriteByte(' ')
			dump(b, d)
		}
		b.WriteByte(')')

	default:
		fmt.Fprintf(b, "<unknown %T>", n)
	}
}

func dumpSpecs(b *strings.Builder, s Specifiers) {
	if s.Net {
		b.WriteString("_net_ ")
	}
	if s.Out {
		b.WriteString("_out_ ")
	}
	if s.In {
		b.WriteString("_in_ ")
	}
	if s.Ctrl {
		b.WriteString("_ctrl_ ")
	}
	if s.Win {
		b.WriteString("_win_ ")
	}
	if s.Ext {
		b.WriteString("_ext_ ")
	}
	if s.At != "" {
		fmt.Fprintf(b, "_at_(%q) ", s.At)
	}
}
