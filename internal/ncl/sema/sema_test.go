package sema

import (
	"strings"
	"testing"

	"ncl/internal/ncl/parser"
	"ncl/internal/ncl/source"
	"ncl/internal/ncl/types"
)

func check(t *testing.T, src string) (*Info, *source.DiagList) {
	t.Helper()
	var diags source.DiagList
	f := parser.ParseSource("test.ncl", src, &diags)
	if diags.HasErrors() {
		t.Fatalf("parse errors before sema: %v", diags.Err())
	}
	info := Check(f, &diags)
	return info, &diags
}

func checkOK(t *testing.T, src string) *Info {
	t.Helper()
	info, diags := check(t, src)
	if diags.HasErrors() {
		t.Fatalf("sema errors:\n%v\nsource:\n%s", diags.Err(), src)
	}
	return info
}

func checkErr(t *testing.T, src, fragment string) {
	t.Helper()
	_, diags := check(t, src)
	if !diags.HasErrors() {
		t.Fatalf("expected error containing %q, got none\nsource:\n%s", fragment, src)
	}
	if !strings.Contains(diags.Err().Error(), fragment) {
		t.Errorf("errors do not mention %q:\n%v", fragment, diags.Err())
	}
}

// --- globals ---

func TestGlobalScalarAndArray(t *testing.T) {
	info := checkOK(t, `
_net_ _at_("s1") int accum[16] = {0};
_net_ unsigned total;
_net_ _out_ void k(int *d) { accum[0] += d[0]; total += 1; }
`)
	if len(info.Globals) != 2 {
		t.Fatalf("globals = %d, want 2", len(info.Globals))
	}
	g := info.GlobalsByName["accum"]
	if g.Loc != "s1" || g.Type.Kind != types.Array || g.Type.Len != 16 {
		t.Errorf("accum global wrong: %+v", g)
	}
	if len(g.Init) != 16 {
		t.Errorf("accum init len = %d, want 16", len(g.Init))
	}
}

func TestGlobalInitializerValues(t *testing.T) {
	info := checkOK(t, `
_net_ int seeds[4] = {3, 1, 4, 1};
_net_ _out_ void k(int *d) { d[0] = seeds[0]; }
`)
	g := info.GlobalsByName["seeds"]
	want := []uint64{3, 1, 4, 1}
	for i, w := range want {
		if g.Init[i] != w {
			t.Errorf("init[%d] = %d, want %d", i, g.Init[i], w)
		}
	}
}

func TestGlobalInitZeroFill(t *testing.T) {
	info := checkOK(t, `
_net_ int a[8] = {7};
_net_ _out_ void k(int *d) { d[0] = a[0]; }
`)
	g := info.GlobalsByName["a"]
	if g.Init[0] != 7 || g.Init[1] != 0 || g.Init[7] != 0 {
		t.Errorf("zero fill broken: %v", g.Init)
	}
}

func TestGlobalInitTooMany(t *testing.T) {
	checkErr(t, `_net_ int a[2] = {1,2,3}; _net_ _out_ void k(int *d) {}`, "too many initializer")
}

func TestConstGlobal(t *testing.T) {
	info := checkOK(t, `
const int N = 4 * 4;
_net_ int a[N] = {0};
_net_ _out_ void k(int *d) { d[0] = N; }
`)
	g := info.GlobalsByName["N"]
	if !g.Const || g.Init[0] != 16 {
		t.Errorf("const global: %+v", g)
	}
	if info.GlobalsByName["a"].Type.Len != 16 {
		t.Error("const used as array dimension failed")
	}
}

func TestPlainGlobalRejected(t *testing.T) {
	checkErr(t, `int hostVar;`, "host state lives in host code")
}

func TestCtrlRequiresLocation(t *testing.T) {
	checkErr(t, `_net_ _ctrl_ unsigned nworkers;`, "requires an _at_")
}

func TestCtrlWithLocationOK(t *testing.T) {
	info := checkOK(t, `
_net_ _at_("s1") _ctrl_ unsigned nworkers;
_net_ _out_ void k(int *d) { if (d[0] == nworkers) _drop(); }
`)
	g := info.GlobalsByName["nworkers"]
	if !g.Ctrl || g.Loc != "s1" {
		t.Errorf("ctrl global: %+v", g)
	}
}

func TestCtrlWriteRejected(t *testing.T) {
	checkErr(t, `
_net_ _at_("s1") _ctrl_ unsigned n;
_net_ _out_ void k(int *d) { n = 4; }
`, "_ctrl_")
}

func TestMapGlobal(t *testing.T) {
	info := checkOK(t, `
_net_ _at_("s1") ncl::Map<uint64_t, uint8_t, 256> Idx;
_net_ _out_ void k(uint64_t key) { if (auto *idx = Idx[key]) { key = *idx; } }
`)
	g := info.GlobalsByName["Idx"]
	if !g.IsMap() || !g.Ctrl {
		t.Error("Map must be implicitly _ctrl_")
	}
	if g.Type.Cap != 256 || g.Type.Key != types.U64 || g.Type.Val != types.U8 {
		t.Errorf("Map type wrong: %s", g.Type)
	}
}

func TestMapInitializerRejected(t *testing.T) {
	checkErr(t, `_net_ ncl::Map<uint64_t, uint8_t, 4> M = {0};`, "control plane")
}

func TestMapWriteRejected(t *testing.T) {
	checkErr(t, `
_net_ ncl::Map<uint64_t, uint8_t, 4> M;
_net_ _out_ void k(uint64_t key) { *M[key] = 3; }
`, "control plane")
}

func TestBloomGlobal(t *testing.T) {
	info := checkOK(t, `
_net_ ncl::Bloom<1024, 3> seen;
_net_ _out_ void k(uint64_t key) { if (seen.test(key)) _drop(); seen.add(key); }
`)
	g := info.GlobalsByName["seen"]
	if !g.IsBloom() || g.Type.Bits != 1024 || g.Type.Hashes != 3 {
		t.Errorf("bloom: %s", g.Type)
	}
}

func TestBloomBadMethod(t *testing.T) {
	checkErr(t, `
_net_ ncl::Bloom<64, 2> b;
_net_ _out_ void k(uint64_t key) { b.remove(key); }
`, "no operation remove")
}

func TestCountMinGlobal(t *testing.T) {
	info := checkOK(t, `
_net_ ncl::CountMin<1024, 4> cm;
_net_ _out_ void k(uint64_t key, unsigned *est) {
    cm.add(key, 1);
    est[0] = cm.estimate(key);
}
`)
	g := info.GlobalsByName["cm"]
	if !g.IsSketch() || g.Type.Bits != 1024 || g.Type.Hashes != 4 {
		t.Errorf("sketch type wrong: %s", g.Type)
	}
}

func TestCountMinErrors(t *testing.T) {
	checkErr(t, `_net_ ncl::CountMin<0, 4> cm;`, "out of range")
	checkErr(t, `ncl::CountMin<64, 2> cm;`, "must be declared _net_")
	checkErr(t, `_net_ ncl::CountMin<64, 2> cm = {0};`, "cannot have an initializer")
	checkErr(t, `
_net_ ncl::CountMin<64, 2> cm;
_net_ _out_ void k(uint64_t key) { cm.add(key); }
`, "takes (key, amount)")
	checkErr(t, `
_net_ ncl::CountMin<64, 2> cm;
_net_ _out_ void k(uint64_t key) { cm.remove(key); }
`, "no operation remove")
	checkErr(t, `
_net_ ncl::CountMin<64, 2> cm;
_net_ _in_ void r(uint64_t *key) { cm.add(key[0], 1); }
`, "switch memory")
}

func TestWinField(t *testing.T) {
	info := checkOK(t, `
_net_ _win_ unsigned chunk;
_net_ _out_ void k(int *d) { d[0] = (int)window.chunk; }
`)
	if len(info.WinFields) != 1 || info.WinFields[0].Name != "chunk" {
		t.Errorf("win fields: %+v", info.WinFields)
	}
}

func TestWinFieldCollidesWithBuiltin(t *testing.T) {
	checkErr(t, `_net_ _win_ unsigned seq;`, "collides with a builtin")
}

func TestWinFieldWriteRejected(t *testing.T) {
	checkErr(t, `
_net_ _win_ unsigned chunk;
_net_ _out_ void k(int *d) { window.chunk = 3; }
`, "read-only")
}

// --- kernels ---

func TestOutKernelBasic(t *testing.T) {
	info := checkOK(t, `_net_ _out_ void k(int *data, uint64_t key, bool flag) { if (flag) _drop(); }`)
	ks := info.OutKernels()
	if len(ks) != 1 || len(ks[0].WindowSig()) != 3 {
		t.Fatalf("kernels: %+v", ks)
	}
}

func TestKernelMustBeNet(t *testing.T) {
	checkErr(t, `_out_ void k(int *d) {}`, "must be declared _net_")
}

func TestNetWithoutDirection(t *testing.T) {
	checkErr(t, `_net_ void k(int *d) {}`, "must be _out_ or _in_")
}

func TestKernelNonVoidRejected(t *testing.T) {
	checkErr(t, `_net_ _out_ int k(int *d) { return 1; }`, "must return void")
}

func TestKernelBothDirections(t *testing.T) {
	checkErr(t, `_net_ _out_ _in_ void k(int *d) {}`, "cannot be both")
}

func TestInKernelNoLocation(t *testing.T) {
	checkErr(t, `_net_ _in_ _at_("s1") void k(int *d) {}`, "incoming kernels exist on all hosts")
}

func TestExtOnlyOnInKernels(t *testing.T) {
	checkErr(t, `_net_ _out_ void k(int *d, _ext_ int *h) {}`, "only legal on incoming kernels")
}

func TestExtMustTrail(t *testing.T) {
	checkErr(t, `_net_ _in_ void k(_ext_ int *h, int *d) {}`, "cannot follow _ext_")
}

func TestInKernelExtWrite(t *testing.T) {
	checkOK(t, `
_net_ _in_ void result(int *data, _ext_ int *hdata, _ext_ bool *done) {
    hdata[window.seq] = data[0];
    *done = true;
}
`)
}

func TestInKernelCannotTouchSwitchMemory(t *testing.T) {
	checkErr(t, `
_net_ int acc[4] = {0};
_net_ _in_ void r(int *d) { d[0] = acc[0]; }
`, "switch memory")
}

func TestInKernelCannotForward(t *testing.T) {
	checkErr(t, `_net_ _in_ void r(int *d) { _drop(); }`, "only valid in outgoing kernels")
}

func TestInKernelCannotUseLocation(t *testing.T) {
	checkErr(t, `_net_ _in_ void r(int *d) { d[0] = (int)location.id; }`, "meaningless in incoming kernels")
}

func TestKernelNeedsWindowParam(t *testing.T) {
	checkErr(t, `_net_ _in_ void r(_ext_ int *h) {}`, "at least one window parameter")
}

func TestKernelParamTypes(t *testing.T) {
	checkErr(t, `_net_ _out_ void k(ncl::Map<int,int,4> m) {}`, "device resource")
}

// --- window and location ---

func TestWindowBuiltinFields(t *testing.T) {
	checkOK(t, `
_net_ unsigned acc[64] = {0};
_net_ _out_ void k(int *d) {
    unsigned base = window.seq * window.len;
    unsigned f = window.from + window.sender + window.wid;
    acc[base] += f;
}
`)
}

func TestWindowUnknownField(t *testing.T) {
	checkErr(t, `_net_ _out_ void k(int *d) { d[0] = (int)window.nope; }`, "window has no field nope")
}

func TestWindowFieldsReadOnly(t *testing.T) {
	checkErr(t, `_net_ _out_ void k(int *d) { window.seq = 2; }`, "read-only")
}

func TestLocationInOutKernel(t *testing.T) {
	checkOK(t, `_net_ _out_ void k(int *d) { if (location.id == 2) _drop(); }`)
}

func TestBareWindowRejected(t *testing.T) {
	checkErr(t, `_net_ _out_ void k(int *d) { d[0] = (int)window; }`, "field access")
}

// --- expressions ---

func TestArithmeticTypes(t *testing.T) {
	info := checkOK(t, `
_net_ _out_ void k(int *d, uint64_t key) {
    unsigned a = 1;
    int b = 2;
    key = key + a;
    b = b * 3 - 1;
    d[0] = b;
}
`)
	_ = info
}

func TestPointerDerefAndIndex(t *testing.T) {
	checkOK(t, `
_net_ _out_ void k(int *d) {
    int x = *d;
    int y = d[3];
    d[0] = x + y;
}
`)
}

func TestMapLookupDeref(t *testing.T) {
	checkOK(t, `
_net_ ncl::Map<uint64_t, uint8_t, 16> M;
_net_ bool Valid[16] = {false};
_net_ _out_ void k(uint64_t key) {
    if (auto *idx = M[key]) { Valid[*idx] = false; }
}
`)
}

func TestMapLookupStatementDecl(t *testing.T) {
	// Fig. 5 line 12 uses `auto *idx = Idx[key];` as a plain statement.
	checkOK(t, `
_net_ ncl::Map<uint64_t, uint8_t, 16> M;
_net_ bool Valid[16] = {false};
_net_ _out_ void k(uint64_t key, bool update) {
    auto *idx = M[key];
    Valid[*idx] = true;
}
`)
}

func TestAutoWithoutMapRejected(t *testing.T) {
	checkErr(t, `_net_ _out_ void k(int *d) { auto *p = d[0]; }`, "must be initialized from a Map lookup")
}

func TestMapKeyTypeMismatch(t *testing.T) {
	checkOK(t, `
_net_ ncl::Map<uint64_t, uint8_t, 16> M;
_net_ _out_ void k(unsigned key) { if (auto *i = M[key]) {} }
`) // integer widening is implicit
}

func TestUndeclaredIdent(t *testing.T) {
	checkErr(t, `_net_ _out_ void k(int *d) { d[0] = missing; }`, "undeclared identifier")
}

func TestBoolIntMixRejected(t *testing.T) {
	checkErr(t, `_net_ _out_ void k(int *d, bool f) { d[0] = f; }`, "cannot assign bool")
}

func TestLogicalOpsNeedTruthy(t *testing.T) {
	checkOK(t, `
_net_ ncl::Map<uint64_t, uint8_t, 16> M;
_net_ _out_ void k(uint64_t key, bool u) { if (u && key != 0) _drop(); }
`)
}

func TestTernaryTyping(t *testing.T) {
	checkOK(t, `_net_ _out_ void k(int *d, bool u) { d[0] = u ? 1 : 2; }`)
}

func TestMemcpyForms(t *testing.T) {
	checkOK(t, `
_net_ int accum[64] = {0};
_net_ char Cache[16][32] = {{0}};
_net_ _out_ void k(int *data, char *val) {
    memcpy(data, &accum[4], 32);
    memcpy(val, Cache[3], 32);
    memcpy(Cache[2], val, 32);
}
`)
}

func TestMemcpyBadArgs(t *testing.T) {
	checkErr(t, `_net_ _out_ void k(int *d) { memcpy(d[0], d, 4); }`, "destination must be a pointer")
	checkErr(t, `_net_ _out_ void k(int *d) { memcpy(d, d); }`, "memcpy takes")
}

func TestLocalScalarOnly(t *testing.T) {
	checkErr(t, `_net_ _out_ void k(int *d) { int tmp[4]; }`, "must be a scalar")
}

func TestLocalShadowingAcrossScopes(t *testing.T) {
	checkOK(t, `
_net_ _out_ void k(int *d) {
    int x = 1;
    if (d[0]) { int x = 2; d[1] = x; }
    d[0] = x;
}
`)
}

func TestLocalRedeclarationSameScope(t *testing.T) {
	checkErr(t, `_net_ _out_ void k(int *d) { int x = 1; int x = 2; }`, "redeclaration")
}

func TestBreakOutsideLoop(t *testing.T) {
	checkErr(t, `_net_ _out_ void k(int *d) { break; }`, "break outside")
}

func TestIncDecLvalue(t *testing.T) {
	checkOK(t, `
_net_ unsigned count[4] = {0};
_net_ _out_ void k(int *d) { ++count[0]; count[1]--; }
`)
	checkErr(t, `_net_ _out_ void k(int *d) { ++(d[0] + 1); }`, "cannot modify")
}

// --- helpers ---

func TestHelperCall(t *testing.T) {
	checkOK(t, `
int clamp(int v, int hi) { return v < hi ? v : hi; }
_net_ _out_ void k(int *d) { d[0] = clamp(d[0], 100); }
`)
}

func TestHelperRecursionRejected(t *testing.T) {
	checkErr(t, `
int f(int v) { return f(v - 1); }
`, "recursive call")
}

func TestHelperArgCount(t *testing.T) {
	checkErr(t, `
int id(int v) { return v; }
_net_ _out_ void k(int *d) { d[0] = id(); }
`, "takes 1 arguments")
}

func TestKernelNotCallable(t *testing.T) {
	checkErr(t, `
_net_ _out_ void a(int *d) {}
_net_ _out_ void b(int *d) { a(d); }
`, "invoked by the runtime")
}

func TestHelperWithForwardingRejectedFromInKernel(t *testing.T) {
	checkErr(t, `
void decide(int v) { if (v) _drop(); }
_net_ _in_ void r(int *d) { decide(d[0]); }
`, "forwarding decisions")
}

// --- forwarding ---

func TestForwardingPrimitives(t *testing.T) {
	info := checkOK(t, `
_net_ _out_ void k(int *d) {
    if (d[0] == 0) _drop();
    else if (d[0] == 1) _reflect();
    else if (d[0] == 2) _bcast();
    else if (d[0] == 3) _pass("server");
    else _pass();
}
`)
	if !info.OutKernels()[0].UsesForwarding {
		t.Error("UsesForwarding should be set")
	}
}

func TestPassLabelMustBeString(t *testing.T) {
	checkErr(t, `_net_ _out_ void k(int *d) { _pass(42); }`, "label must be a string")
}

func TestDropTakesNoArgs(t *testing.T) {
	checkErr(t, `_net_ _out_ void k(int *d) { _drop(1); }`, "takes no arguments")
}

// --- paper programs ---

const fig4Src = `
#define DATA_LEN 64
#define WIN_LEN 8

_net_ _at_("s1") int accum[DATA_LEN] = {0};
_net_ _at_("s1") unsigned count[DATA_LEN/WIN_LEN] = {0};
_net_ _at_("s1") _ctrl_ unsigned nworkers;

_net_ _out_ void allreduce(int *data) {
    unsigned base = window.seq * window.len;
    for (unsigned i = 0; i < window.len; ++i)
        accum[base + i] += data[i];
    if (++count[window.seq] == nworkers) {
        memcpy(data, &accum[base], window.len * 4);
        count[window.seq] = 0; _bcast();
    } else { _drop(); }
}

_net_ _in_ void result(int *data, _ext_ int *hdata, _ext_ bool *done) {
    for (unsigned i = 0; i < window.len; ++i)
        hdata[window.seq * window.len + i] = data[i];
    *done = true;
}
`

func TestPaperFig4Checks(t *testing.T) {
	info := checkOK(t, fig4Src)
	if len(info.OutKernels()) != 1 || len(info.InKernels()) != 1 {
		t.Fatalf("kernel counts wrong")
	}
	ar := info.OutKernels()[0]
	if ar.Loc != "" {
		t.Error("allreduce is location-less (runs on all switches)")
	}
	if !ar.UsesForwarding {
		t.Error("allreduce makes forwarding decisions")
	}
}

const fig5Src = `
#define SERVER 1

_net_ _at_("s1") ncl::Map<uint64_t, uint8_t, 256> Idx;
_net_ _at_("s1") char Cache[256][128] = {{0}};
_net_ _at_("s1") bool Valid[256] = {false};

_net_ _out_ void query(uint64_t key, char *val, bool update) {
    if (window.from != SERVER && update) {
        if (auto *idx = Idx[key]) Valid[*idx] = false;
    } else if (window.from != SERVER) {
        if (auto *idx = Idx[key]) {
            if (Valid[*idx]) {
                memcpy(val, Cache[*idx], 128); _reflect(); } }
    } else if (update) {
        auto *idx = Idx[key]; memcpy(Cache[*idx], val, 128);
        Valid[*idx] = true; _drop();
    } else { }
}
`

func TestPaperFig5Checks(t *testing.T) {
	info := checkOK(t, fig5Src)
	q := info.OutKernels()[0]
	if q.Name != "query" || len(q.WindowSig()) != 3 {
		t.Fatalf("query kernel wrong: %+v", q)
	}
	idx := info.GlobalsByName["Idx"]
	if !idx.IsMap() || idx.Loc != "s1" {
		t.Error("Idx map wrong")
	}
}

// --- misc ---

func TestRedeclarationTopLevel(t *testing.T) {
	checkErr(t, `
_net_ int a[4] = {0};
_net_ unsigned a;
`, "redeclaration of a")
}

func TestBuiltinNameCollision(t *testing.T) {
	checkErr(t, `_net_ int window[4] = {0};`, "builtin name")
}

func TestFuncGlobalNameCollision(t *testing.T) {
	checkErr(t, `
_net_ int f[4] = {0};
_net_ _out_ void f(int *d) {}
`, "redeclaration of f")
}

func TestConstsRecorded(t *testing.T) {
	info := checkOK(t, `
const int N = 8;
_net_ int a[N] = {0};
_net_ _out_ void k(int *d) { d[0] = N * 2; }
`)
	found := false
	for e, v := range info.Consts {
		_ = e
		if v == 16 {
			found = true
		}
	}
	if !found {
		t.Error("constant N*2=16 not recorded in Consts")
	}
}

func TestUndefinedFunctionBody(t *testing.T) {
	checkErr(t, `_net_ _out_ void k(int *d);`, "never defined")
}
