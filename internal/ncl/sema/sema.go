// Package sema performs semantic analysis of parsed NCL programs: symbol
// resolution, type checking, constant evaluation, and the NCL-specific
// rules of §4.1 of the paper (kernel signatures, switch memory, _ctrl_
// variables, _win_ window extensions, forwarding primitives, the ncl::Map
// control-plane contract).
package sema

import (
	"ncl/internal/ncl/ast"
	"ncl/internal/ncl/source"
	"ncl/internal/ncl/types"
)

// FuncKind classifies NCL functions.
type FuncKind int

const (
	Helper    FuncKind = iota // plain function, inlined into kernels
	OutKernel                 // _net_ _out_: runs on switches
	InKernel                  // _net_ _in_: runs on receiving hosts
)

func (k FuncKind) String() string {
	switch k {
	case Helper:
		return "helper"
	case OutKernel:
		return "outgoing kernel"
	case InKernel:
		return "incoming kernel"
	}
	return "func"
}

// Global is switch memory: a _net_ global variable, control variable, Map,
// or Bloom; or a compile-time constant (const with initializer).
type Global struct {
	Name  string
	Type  *types.Type
	Loc   string // _at_ label; "" = every switch (SPMD)
	Ctrl  bool   // _ctrl_: host-written, switch-read-only
	Const bool   // compile-time constant, usable anywhere
	Init  []uint64
	Decl  *ast.VarDecl
}

// IsMap reports whether the global is an ncl::Map (a control-plane managed
// MAT under the hood, per §4.3).
func (g *Global) IsMap() bool { return g.Type.Kind == types.Map }

// IsBloom reports whether the global is an ncl::Bloom.
func (g *Global) IsBloom() bool { return g.Type.Kind == types.Bloom }

// IsSketch reports whether the global is an ncl::CountMin sketch.
func (g *Global) IsSketch() bool { return g.Type.Kind == types.Sketch }

// WinField is a user extension of the builtin window struct (§4.2).
type WinField struct {
	Name string
	Type *types.Type
	Decl *ast.VarDecl
}

// Param is a function/kernel parameter.
type Param struct {
	Name  string
	Type  *types.Type
	Ext   bool // _ext_ host-memory parameter (incoming kernels only)
	Index int
	Decl  *ast.ParamDecl
}

// Func is a semantic function: an out/in kernel or a helper.
type Func struct {
	Name   string
	Kind   FuncKind
	Loc    string
	Params []*Param
	Ret    *types.Type
	Decl   *ast.FuncDecl

	// UsesForwarding is set when the body (transitively, after inlining)
	// calls a forwarding primitive; illegal for incoming kernels.
	UsesForwarding bool
}

// WindowSig returns the window-data portion of the parameter list (the
// non-_ext_ prefix), which defines the window layout for this kernel.
func (f *Func) WindowSig() []*Param {
	var sig []*Param
	for _, p := range f.Params {
		if !p.Ext {
			sig = append(sig, p)
		}
	}
	return sig
}

// Local is a function-local variable (including condition declarations and
// for-init declarations).
type Local struct {
	Name string
	Type *types.Type
	Decl *ast.VarDecl
}

// Builtin identifies a builtin object referenced by name.
type Builtin struct {
	Name string
}

// builtin names.
const (
	BWindow   = "window"
	BLocation = "location"
	BMemcpy   = "memcpy"
	BPass     = "_pass"
	BDrop     = "_drop"
	BReflect  = "_reflect"
	BBcast    = "_bcast"
)

// WindowBuiltinFields are the builtin fields of the window struct (§4.2):
// sequence number, window length in elements, sender role/id information.
var WindowBuiltinFields = map[string]*types.Type{
	"seq":    types.U32, // window sequence number within the invocation
	"len":    types.U32, // elements per array chunk in this window
	"from":   types.U32, // role id of the previous hop's sender (paper: window.from)
	"sender": types.U32, // originating host id
	"wid":    types.U32, // invocation id
}

// LocationFields are the fields of the builtin location struct (§4.1).
var LocationFields = map[string]*types.Type{
	"id": types.U32, // numeric id of the current switch from the AND file
}

// ForwardingBuiltins maps primitive names to whether they accept an
// optional label argument.
var ForwardingBuiltins = map[string]bool{
	BPass: true, BDrop: false, BReflect: false, BBcast: false,
}

// Info is the result of semantic analysis.
type Info struct {
	Types     map[ast.Expr]*types.Type
	Idents    map[*ast.Ident]any // *Global | *Param | *Local | *Func | Builtin
	Consts    map[ast.Expr]uint64
	CondLocal map[*ast.IfStmt]*Local  // condition-declaration locals
	Decls     map[*ast.VarDecl]*Local // local declaration → object

	Globals       []*Global
	GlobalsByName map[string]*Global
	WinFields     []*WinField
	Funcs         []*Func
	FuncsByName   map[string]*Func
}

// Kernels returns the out/in kernels in declaration order.
func (in *Info) Kernels() []*Func {
	var ks []*Func
	for _, f := range in.Funcs {
		if f.Kind != Helper {
			ks = append(ks, f)
		}
	}
	return ks
}

// OutKernels returns the outgoing kernels in declaration order.
func (in *Info) OutKernels() []*Func {
	var ks []*Func
	for _, f := range in.Funcs {
		if f.Kind == OutKernel {
			ks = append(ks, f)
		}
	}
	return ks
}

// InKernels returns the incoming kernels in declaration order.
func (in *Info) InKernels() []*Func {
	var ks []*Func
	for _, f := range in.Funcs {
		if f.Kind == InKernel {
			ks = append(ks, f)
		}
	}
	return ks
}

// TypeOf returns the checked type of e (nil if unchecked due to earlier
// errors).
func (in *Info) TypeOf(e ast.Expr) *types.Type { return in.Types[e] }

// Check runs semantic analysis over a parsed file. It always returns an
// Info (possibly partial); callers must consult diags for errors before
// using it for lowering.
func Check(file *ast.File, diags *source.DiagList) *Info {
	c := &checker{
		info: &Info{
			Types:         map[ast.Expr]*types.Type{},
			Idents:        map[*ast.Ident]any{},
			Consts:        map[ast.Expr]uint64{},
			CondLocal:     map[*ast.IfStmt]*Local{},
			Decls:         map[*ast.VarDecl]*Local{},
			GlobalsByName: map[string]*Global{},
			FuncsByName:   map[string]*Func{},
		},
		diags: diags,
	}
	c.collect(file)
	c.checkBodies()
	return c.info
}

// checker carries analysis state.
type checker struct {
	info  *Info
	diags *source.DiagList

	// Per-function state.
	fn     *Func
	scopes []map[string]any
	loops  int
	flags  map[*Func]*funcFlags
}

func (c *checker) errorf(pos source.Pos, format string, args ...any) {
	c.diags.Errorf(pos, format, args...)
}

// ---------------------------------------------------------------------------
// Declaration collection

func (c *checker) collect(file *ast.File) {
	for _, d := range file.Decls {
		switch d := d.(type) {
		case *ast.VarDecl:
			c.collectGlobal(d)
		case *ast.FuncDecl:
			c.collectFunc(d)
		}
	}
}

func (c *checker) declareTop(name string, pos source.Pos, obj any) bool {
	if g, dup := c.info.GlobalsByName[name]; dup {
		c.errorf(pos, "redeclaration of %s (previously declared at %s)", name, g.Decl.Pos())
		return false
	}
	if f, dup := c.info.FuncsByName[name]; dup {
		c.errorf(pos, "redeclaration of %s (previously declared at %s)", name, f.Decl.Pos())
		return false
	}
	if isBuiltinName(name) {
		c.errorf(pos, "%s is a builtin name and cannot be redeclared", name)
		return false
	}
	switch o := obj.(type) {
	case *Global:
		c.info.GlobalsByName[name] = o
	case *Func:
		c.info.FuncsByName[name] = o
	}
	return true
}

func isBuiltinName(name string) bool {
	switch name {
	case BWindow, BLocation, BMemcpy, BPass, BDrop, BReflect, BBcast:
		return true
	}
	return false
}

func (c *checker) collectGlobal(d *ast.VarDecl) {
	s := d.Specs
	if s.Out || s.In {
		c.errorf(d.Pos(), "_out_/_in_ apply to kernels, not variables")
	}
	if s.Ext {
		c.errorf(d.Pos(), "_ext_ applies to incoming-kernel parameters only")
	}

	// Window extension field (§4.2).
	if s.Win {
		if !s.Net {
			c.errorf(d.Pos(), "_win_ fields must also be declared _net_")
		}
		if s.Ctrl || s.At != "" {
			c.errorf(d.Pos(), "_win_ fields cannot be _ctrl_ or placed with _at_")
		}
		ty := c.resolveType(d.Type, false)
		if ty == nil || !ty.IsScalar() {
			c.errorf(d.Pos(), "_win_ field %s must have a scalar integer or bool type", d.Name)
			return
		}
		if d.Init != nil {
			c.errorf(d.Pos(), "_win_ field %s cannot have an initializer; values are attached per invocation", d.Name)
		}
		if _, dup := WindowBuiltinFields[d.Name]; dup {
			c.errorf(d.Pos(), "_win_ field %s collides with a builtin window field", d.Name)
			return
		}
		for _, wf := range c.info.WinFields {
			if wf.Name == d.Name {
				c.errorf(d.Pos(), "duplicate _win_ field %s", d.Name)
				return
			}
		}
		c.info.WinFields = append(c.info.WinFields, &WinField{Name: d.Name, Type: ty, Decl: d})
		return
	}

	ty := c.resolveType(d.Type, true)
	if ty == nil {
		return
	}

	g := &Global{Name: d.Name, Type: ty, Loc: s.At, Ctrl: s.Ctrl, Decl: d}

	switch {
	case ty.Kind == types.Map:
		// Maps are implicitly _ctrl_: managed by the control plane (§4.3).
		g.Ctrl = true
		if !s.Net {
			c.errorf(d.Pos(), "ncl::Map %s must be declared _net_ (it is a switch MAT)", d.Name)
		}
		if d.Init != nil {
			c.errorf(d.Pos(), "ncl::Map %s cannot have an initializer; entries are installed by the control plane", d.Name)
		}
	case ty.Kind == types.Bloom || ty.Kind == types.Sketch:
		if !s.Net {
			c.errorf(d.Pos(), "%s %s must be declared _net_", ty, d.Name)
		}
		if d.Init != nil {
			c.errorf(d.Pos(), "%s %s cannot have an initializer", ty, d.Name)
		}
	case s.Net:
		if s.Ctrl && s.At == "" {
			// Paper §4.1: for control variables "location is required".
			c.errorf(d.Pos(), "_ctrl_ variable %s requires an _at_(label) location", d.Name)
		}
		if ty.Kind != types.Array && !ty.IsScalar() {
			c.errorf(d.Pos(), "switch memory %s must be a scalar or array type, not %s", d.Name, ty)
		}
		g.Init = c.evalGlobalInit(d, ty)
	case d.Type != nil && isConstType(d.Type):
		// const globals are compile-time constants, usable in kernels.
		g.Const = true
		if !ty.IsScalar() {
			c.errorf(d.Pos(), "const global %s must be a scalar", d.Name)
		}
		if d.Init == nil {
			c.errorf(d.Pos(), "const global %s requires an initializer", d.Name)
		} else {
			v, _, ok := c.constEval(d.Init)
			if !ok {
				c.errorf(d.Init.Pos(), "const global %s initializer is not a constant expression", d.Name)
			} else {
				g.Init = []uint64{ty.Normalize(v)}
			}
		}
	default:
		c.errorf(d.Pos(), "global %s must be _net_ switch memory or a const constant; host state lives in host code (Go runtime API)", d.Name)
		return
	}

	if c.declareTop(d.Name, d.Pos(), g) {
		c.info.Globals = append(c.info.Globals, g)
	}
}

func isConstType(t ast.TypeExpr) bool {
	b, ok := t.(*ast.BaseType)
	return ok && b.Const
}

// evalGlobalInit flattens an initializer for scalar or (nested) array
// switch memory into per-element values. A short initializer list
// zero-fills the remainder, matching C semantics for `= {0}`.
func (c *checker) evalGlobalInit(d *ast.VarDecl, ty *types.Type) []uint64 {
	n := elemCount(ty)
	vals := make([]uint64, n)
	if d.Init == nil {
		return vals
	}
	elemTy := scalarElem(ty)
	if elemTy == nil {
		c.errorf(d.Pos(), "cannot initialize %s", ty)
		return vals
	}
	pos := 0
	var fill func(e ast.Expr, depth int)
	fill = func(e ast.Expr, depth int) {
		if il, ok := e.(*ast.InitList); ok {
			for _, el := range il.Elems {
				fill(el, depth+1)
			}
			return
		}
		v, _, ok := c.constEval(e)
		if !ok {
			c.errorf(e.Pos(), "switch memory initializer must be a constant expression")
			return
		}
		if pos >= n {
			c.errorf(e.Pos(), "too many initializer values for %s (capacity %d)", d.Name, n)
			return
		}
		vals[pos] = elemTy.Normalize(v)
		pos++
	}
	if ty.IsScalar() {
		if _, isList := d.Init.(*ast.InitList); isList {
			c.errorf(d.Init.Pos(), "scalar %s cannot take a braced initializer list", d.Name)
			return vals
		}
		fill(d.Init, 0)
		return vals
	}
	if _, isList := d.Init.(*ast.InitList); !isList {
		c.errorf(d.Init.Pos(), "array %s requires a braced initializer list", d.Name)
		return vals
	}
	fill(d.Init, 0)
	return vals
}

// elemCount returns the number of scalar elements in ty (1 for scalars).
func elemCount(ty *types.Type) int {
	n := 1
	for ty.Kind == types.Array {
		n *= ty.Len
		ty = ty.Elem
	}
	return n
}

// scalarElem returns the ultimate scalar element type of ty, or nil.
func scalarElem(ty *types.Type) *types.Type {
	for ty.Kind == types.Array {
		ty = ty.Elem
	}
	if ty.IsScalar() {
		return ty
	}
	return nil
}

func (c *checker) collectFunc(d *ast.FuncDecl) {
	s := d.Specs
	kind := Helper
	switch {
	case s.Out && s.In:
		c.errorf(d.Pos(), "kernel %s cannot be both _out_ and _in_", d.Name)
		kind = OutKernel
	case s.Out:
		kind = OutKernel
	case s.In:
		kind = InKernel
	}
	if (s.Out || s.In) && !s.Net {
		c.errorf(d.Pos(), "kernel %s must be declared _net_", d.Name)
	}
	if s.Net && kind == Helper {
		c.errorf(d.Pos(), "_net_ function %s must be _out_ or _in_", d.Name)
	}
	if s.Ctrl || s.Win || s.Ext {
		c.errorf(d.Pos(), "_ctrl_/_win_/_ext_ do not apply to functions")
	}
	if s.At != "" && kind == InKernel {
		// Paper §4.1: "A location is meaningless for incoming kernels".
		c.errorf(s.AtPos, "incoming kernel %s cannot have an _at_ location; incoming kernels exist on all hosts", d.Name)
	}
	if s.At != "" && kind == Helper {
		c.errorf(s.AtPos, "helper function %s cannot have an _at_ location", d.Name)
	}
	if d.Body == nil {
		c.errorf(d.Pos(), "function %s is declared but never defined", d.Name)
	}

	ret := c.resolveReturnType(d.Ret)
	if kind != Helper && (ret == nil || ret.Kind != types.Void) {
		c.errorf(d.Pos(), "kernel %s must return void; kernels communicate through window data and forwarding decisions", d.Name)
		ret = types.VoidType
	}

	f := &Func{Name: d.Name, Kind: kind, Loc: s.At, Ret: ret, Decl: d}
	seen := map[string]bool{}
	sawExt := false
	for i, pd := range d.Params {
		pty := c.resolveType(pd.Type, false)
		if pty == nil {
			pty = types.I32
		}
		if pd.Ext {
			sawExt = true
			if kind != InKernel {
				c.errorf(pd.Pos(), "_ext_ parameter %s is only legal on incoming kernels (host memory access, §4.1)", pd.Name)
			}
		} else if sawExt {
			c.errorf(pd.Pos(), "window parameter %s cannot follow _ext_ parameters; _ext_ extends the parameter list at the end", pd.Name)
		}
		if kind == Helper && !pty.IsScalar() {
			c.errorf(pd.Pos(), "helper parameter %s must be a scalar (helpers are inlined by value), not %s", pd.Name, pty)
		}
		if kind != Helper && !pd.Ext {
			// Window parameters define the window layout: scalars or
			// pointers to scalars (arrays of elements).
			ok := pty.IsScalar() || (pty.Kind == types.Pointer && !pty.OptionalPtr && pty.Elem.IsScalar())
			if !ok {
				c.errorf(pd.Pos(), "kernel parameter %s must be a scalar or pointer-to-scalar (window data), not %s", pd.Name, pty)
			}
		}
		if kind == InKernel && pd.Ext {
			ok := pty.Kind == types.Pointer && !pty.OptionalPtr && pty.Elem.IsScalar()
			if !ok {
				c.errorf(pd.Pos(), "_ext_ parameter %s must be a pointer to host memory, not %s", pd.Name, pty)
			}
		}
		if seen[pd.Name] {
			c.errorf(pd.Pos(), "duplicate parameter name %s", pd.Name)
		}
		seen[pd.Name] = true
		f.Params = append(f.Params, &Param{Name: pd.Name, Type: pty, Ext: pd.Ext, Index: i, Decl: pd})
	}
	if kind != Helper && len(f.WindowSig()) == 0 {
		c.errorf(d.Pos(), "kernel %s must have at least one window parameter", d.Name)
	}

	if c.declareTop(d.Name, d.Pos(), f) {
		c.info.Funcs = append(c.info.Funcs, f)
	}
}

// resolveReturnType resolves a return type, allowing void.
func (c *checker) resolveReturnType(t ast.TypeExpr) *types.Type {
	if b, ok := t.(*ast.BaseType); ok && b.Name == "void" {
		return types.VoidType
	}
	return c.resolveType(t, false)
}

// resolveType resolves a syntactic type. allowResource permits Map/Bloom
// (globals only).
func (c *checker) resolveType(t ast.TypeExpr, allowResource bool) *types.Type {
	switch t := t.(type) {
	case *ast.BaseType:
		switch t.Name {
		case "void":
			c.errorf(t.Pos(), "void is only valid as a return type")
			return nil
		case "auto":
			c.errorf(t.Pos(), "auto is only valid in condition declarations initialized from a Map lookup")
			return nil
		}
		ty, ok := types.ByName(t.Name)
		if !ok {
			c.errorf(t.Pos(), "unknown type %s", t.Name)
			return nil
		}
		return ty
	case *ast.PointerType:
		// `auto *x` is resolved at the declaration site, not here.
		if b, ok := t.Elem.(*ast.BaseType); ok && b.Name == "auto" {
			return nil
		}
		elem := c.resolveType(t.Elem, false)
		if elem == nil {
			return nil
		}
		return types.PointerTo(elem)
	case *ast.ArrayType:
		elem := c.resolveType(t.Elem, false)
		if elem == nil {
			return nil
		}
		if t.Len == nil {
			c.errorf(t.Pos(), "array dimension is required")
			return nil
		}
		n, _, ok := c.constEval(t.Len)
		if !ok {
			c.errorf(t.Len.Pos(), "array dimension must be a constant expression")
			return nil
		}
		if n == 0 || n > 1<<24 {
			c.errorf(t.Len.Pos(), "array dimension %d out of range [1, 2^24]", n)
			return nil
		}
		return types.ArrayOf(elem, int(n))
	case *ast.TemplateType:
		if !allowResource {
			c.errorf(t.Pos(), "ncl::%s is a device resource and only valid as a _net_ global", t.Name)
			return nil
		}
		return c.resolveTemplate(t)
	}
	c.errorf(t.Pos(), "unsupported type")
	return nil
}

func (c *checker) resolveTemplate(t *ast.TemplateType) *types.Type {
	switch t.Name {
	case "Map":
		if len(t.Args) != 3 {
			c.errorf(t.Pos(), "ncl::Map requires <Key, Value, Capacity>")
			return nil
		}
		key := c.templateTypeArg(t.Args[0], "Map key")
		val := c.templateTypeArg(t.Args[1], "Map value")
		cap64, capOK := c.templateConstArg(t.Args[2], "Map capacity")
		if key == nil || val == nil || !capOK {
			return nil
		}
		if !key.IsInteger() || !val.IsInteger() {
			c.errorf(t.Pos(), "ncl::Map key and value must be integer types")
			return nil
		}
		if cap64 == 0 || cap64 > 1<<20 {
			c.errorf(t.Pos(), "ncl::Map capacity %d out of range [1, 2^20]", cap64)
			return nil
		}
		return types.MapOf(key, val, int(cap64))
	case "CountMin":
		if len(t.Args) != 2 {
			c.errorf(t.Pos(), "ncl::CountMin requires <Columns, Rows>")
			return nil
		}
		cols, ok1 := c.templateConstArg(t.Args[0], "CountMin columns")
		rows, ok2 := c.templateConstArg(t.Args[1], "CountMin rows")
		if !ok1 || !ok2 {
			return nil
		}
		if cols == 0 || cols > 1<<20 || rows == 0 || rows > 8 {
			c.errorf(t.Pos(), "ncl::CountMin parameters out of range (columns ≤ 2^20, rows ≤ 8)")
			return nil
		}
		return types.SketchOf(int(cols), int(rows))
	case "Bloom":
		if len(t.Args) != 2 {
			c.errorf(t.Pos(), "ncl::Bloom requires <Bits, Hashes>")
			return nil
		}
		bits, ok1 := c.templateConstArg(t.Args[0], "Bloom bits")
		hashes, ok2 := c.templateConstArg(t.Args[1], "Bloom hashes")
		if !ok1 || !ok2 {
			return nil
		}
		if bits == 0 || bits > 1<<22 || hashes == 0 || hashes > 8 {
			c.errorf(t.Pos(), "ncl::Bloom parameters out of range (bits ≤ 2^22, hashes ≤ 8)")
			return nil
		}
		return types.BloomOf(int(bits), int(hashes))
	}
	c.errorf(t.Pos(), "unknown ncl:: type %s (available: Map, Bloom, CountMin)", t.Name)
	return nil
}

func (c *checker) templateTypeArg(a ast.TypeArg, what string) *types.Type {
	if a.Type == nil {
		c.errorf(a.Value.Pos(), "%s must be a type", what)
		return nil
	}
	return c.resolveType(a.Type, false)
}

func (c *checker) templateConstArg(a ast.TypeArg, what string) (uint64, bool) {
	if a.Value == nil {
		c.errorf(a.Type.Pos(), "%s must be a constant expression", what)
		return 0, false
	}
	v, _, ok := c.constEval(a.Value)
	if !ok {
		c.errorf(a.Value.Pos(), "%s must be a constant expression", what)
		return 0, false
	}
	return v, true
}
