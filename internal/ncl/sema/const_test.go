package sema

import (
	"testing"
	"testing/quick"

	"ncl/internal/ncl/token"
	"ncl/internal/ncl/types"
)

// TestEvalArithSemantics pins the compile-time arithmetic the constant
// folder uses (matching the runtime semantics except division by zero,
// which is "not constant" at compile time and zero at run time).
func TestEvalArithSemantics(t *testing.T) {
	cases := []struct {
		op   token.Kind
		x, y uint64
		t    *types.Type
		want uint64
		ok   bool
	}{
		{token.ADD, 3, 4, types.I32, 7, true},
		{token.ADD, 0x7FFFFFFF, 1, types.I32, types.I32.Normalize(0x80000000), true}, // wraps
		{token.SUB, 3, 5, types.U32, types.U32.Normalize(^uint64(1)), true},
		{token.MUL, 1 << 20, 1 << 20, types.U32, types.U32.Normalize(1 << 40), true},
		{token.DIV, ^uint64(0) - 6, 2, types.I32, types.I32.Normalize(^uint64(2)), true}, // -7/2 = -3
		{token.DIV, 7, 0, types.I32, 0, false},
		{token.MOD, 7, 0, types.I32, 0, false},
		{token.MOD, ^uint64(0) - 6, 3, types.I32, ^uint64(0), true}, // -7%3 = -1
		{token.AND, 0xF0, 0x3C, types.U32, 0x30, true},
		{token.OR, 0xF0, 0x0F, types.U32, 0xFF, true},
		{token.XOR, 0xFF, 0x0F, types.U32, 0xF0, true},
		{token.SHL, 1, 35, types.U32, 8, true}, // count masked to width
		{token.SHR, 0x80, 3, types.U32, 0x10, true},
		{token.SHR, ^uint64(0), 1, types.I32, ^uint64(0), true}, // arithmetic shift of -1
		{token.LAND, 1, 1, types.I32, 0, false},                 // not an arith op
	}
	for _, c := range cases {
		got, ok := EvalArith(c.op, c.x, c.y, c.t)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("EvalArith(%v,%#x,%#x,%s) = %#x,%v want %#x,%v", c.op, c.x, c.y, c.t, got, ok, c.want, c.ok)
		}
	}
}

// TestConstExprMatrix drives constEval through the checker with a battery
// of constant expressions used as array dimensions.
func TestConstExprMatrix(t *testing.T) {
	cases := []struct {
		expr string
		dim  int
	}{
		{"4 + 4", 8},
		{"1 << 4", 16},
		{"64 / 4 - 8", 8},
		{"(3 * 3) % 5", 4},
		{"~0 & 15", 15},
		{"0xFF >> 4", 15},
		{"1 < 2 ? 8 : 9", 8},
		{"false ? 8 : 9", 9},
		{"1 == 1 && 2 != 3 ? 4 : 5", 4},
		{"!(1 > 2) ? 6 : 7", 6},
		{"-(-12)", 12},
		{"(int)12", 12},
		{"sizeof(uint64_t)", 8},
		{"sizeof(int) * 4", 16},
	}
	for _, c := range cases {
		src := "_net_ int a[" + c.expr + "] = {0};\n_net_ _out_ void k(int *d) { a[0] += d[0]; }"
		info := checkOK(t, src)
		g := info.GlobalsByName["a"]
		if g.Type.Len != c.dim {
			t.Errorf("dim of %q = %d, want %d", c.expr, g.Type.Len, c.dim)
		}
	}
}

func TestConstExprRejections(t *testing.T) {
	checkErr(t, `
_net_ int n[4] = {0};
_net_ int a[n[0]] = {0};
`, "constant expression")
	checkErr(t, `_net_ int a[4/0] = {0};`, "constant expression")
	checkErr(t, `_net_ int a[0] = {0};`, "out of range")
}

func TestSignedComparisonConstants(t *testing.T) {
	// -1 < 1 must hold for signed comparison in constant folding.
	info := checkOK(t, `
const int NEG = -1;
_net_ int a[NEG < 1 ? 8 : 16] = {0};
_net_ _out_ void k(int *d) { a[0] += d[0]; }
`)
	if info.GlobalsByName["a"].Type.Len != 8 {
		t.Errorf("signed constant comparison folded wrong: %d", info.GlobalsByName["a"].Type.Len)
	}
}

// Property: EvalArith is total and width-stable for every defined op.
func TestEvalArithNormalizedProperty(t *testing.T) {
	ops := []token.Kind{token.ADD, token.SUB, token.MUL, token.AND, token.OR,
		token.XOR, token.SHL, token.SHR}
	tys := []*types.Type{types.U8, types.I8, types.U32, types.I32, types.U64, types.I64}
	f := func(x, y uint64, opPick, tyPick uint8) bool {
		op := ops[int(opPick)%len(ops)]
		ty := tys[int(tyPick)%len(tys)]
		v, ok := EvalArith(op, ty.Normalize(x), ty.Normalize(y), ty)
		if !ok {
			return false
		}
		return ty.Normalize(v) == v // results are canonical
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestInfoHelpers(t *testing.T) {
	info := checkOK(t, `
_net_ _out_ void a(int *d) {}
_net_ _in_ void b(int *d) { d[0] = 1; }
int helper(int x) { return x; }
`)
	if len(info.Kernels()) != 2 || len(info.OutKernels()) != 1 || len(info.InKernels()) != 1 {
		t.Error("kernel listing helpers broken")
	}
	if Helper.String() != "helper" || OutKernel.String() != "outgoing kernel" || InKernel.String() != "incoming kernel" {
		t.Error("FuncKind strings")
	}
}
