package sema

import (
	"ncl/internal/ncl/ast"
	"ncl/internal/ncl/source"
	"ncl/internal/ncl/token"
	"ncl/internal/ncl/types"
)

// funcFlags tracks switch-side feature use so helper inlining sites can be
// validated (incoming kernels run on hosts and must not touch switch
// state, locations, or forwarding).
type funcFlags struct {
	forwarding  bool
	switchState bool // _net_ globals, Maps, Blooms
	location    bool
}

// checkBodies type-checks every function body. Helpers must be defined
// before use (C-style), which the single in-order pass enforces naturally.
func (c *checker) checkBodies() {
	c.flags = map[*Func]*funcFlags{}
	for _, f := range c.info.Funcs {
		c.checkFunc(f)
	}
}

func (c *checker) checkFunc(f *Func) {
	if f.Decl.Body == nil {
		return
	}
	c.fn = f
	c.flags[f] = &funcFlags{}
	c.scopes = []map[string]any{{}}
	c.loops = 0
	for _, p := range f.Params {
		c.declare(p.Name, p, p.Decl.Pos())
	}
	c.checkBlock(f.Decl.Body)
	c.scopes = nil
	f.UsesForwarding = c.flags[f].forwarding
	c.fn = nil
}

// --- scopes ---

func (c *checker) pushScope() { c.scopes = append(c.scopes, map[string]any{}) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(name string, obj any, pos source.Pos) {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[name]; dup {
		c.errorf(pos, "redeclaration of %s in the same scope", name)
		return
	}
	top[name] = obj
}

func (c *checker) lookup(name string) any {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if obj, ok := c.scopes[i][name]; ok {
			return obj
		}
	}
	if g, ok := c.info.GlobalsByName[name]; ok {
		return g
	}
	if f, ok := c.info.FuncsByName[name]; ok {
		return f
	}
	switch name {
	case BWindow, BLocation, BMemcpy, BPass, BDrop, BReflect, BBcast:
		return Builtin{Name: name}
	}
	return nil
}

// --- statements ---

func (c *checker) checkBlock(b *ast.BlockStmt) {
	c.pushScope()
	for _, s := range b.Stmts {
		c.checkStmt(s)
	}
	c.popScope()
}

func (c *checker) checkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		c.checkBlock(s)
	case *ast.EmptyStmt:
	case *ast.DeclStmt:
		c.checkLocalDecl(s.Decl)
	case *ast.ExprStmt:
		c.checkExpr(s.X)
	case *ast.IfStmt:
		c.pushScope()
		if s.CondDecl != nil {
			lo := c.checkLocalDecl(s.CondDecl)
			if lo != nil {
				c.info.CondLocal[s] = lo
				if !types.Truthy(lo.Type) {
					c.errorf(s.CondDecl.Pos(), "condition declaration of type %s is not testable", lo.Type)
				}
			}
		} else {
			t := c.checkExpr(s.Cond)
			if t != nil && !types.Truthy(t) {
				c.errorf(s.Cond.Pos(), "if condition has type %s; need bool, integer, or Map-lookup pointer", t)
			}
		}
		c.checkStmt(s.Then)
		if s.Else != nil {
			c.checkStmt(s.Else)
		}
		c.popScope()
	case *ast.ForStmt:
		c.pushScope()
		if s.Init != nil {
			c.checkStmt(s.Init)
		}
		if s.Cond != nil {
			t := c.checkExpr(s.Cond)
			if t != nil && !types.Truthy(t) {
				c.errorf(s.Cond.Pos(), "for condition has type %s", t)
			}
		}
		if s.Post != nil {
			c.checkExpr(s.Post)
		}
		c.loops++
		c.checkStmt(s.Body)
		c.loops--
		c.popScope()
	case *ast.WhileStmt:
		t := c.checkExpr(s.Cond)
		if t != nil && !types.Truthy(t) {
			c.errorf(s.Cond.Pos(), "while condition has type %s", t)
		}
		c.loops++
		c.checkStmt(s.Body)
		c.loops--
	case *ast.ReturnStmt:
		if s.X == nil {
			if c.fn.Ret.Kind != types.Void {
				c.errorf(s.Pos(), "%s must return a %s value", c.fn.Name, c.fn.Ret)
			}
			return
		}
		if c.fn.Ret.Kind == types.Void {
			c.errorf(s.Pos(), "%s returns void; kernels produce results by writing window data", c.fn.Name)
			c.checkExpr(s.X)
			return
		}
		t := c.checkExpr(s.X)
		if t != nil && !types.AssignableTo(t, c.fn.Ret) {
			c.errorf(s.X.Pos(), "cannot return %s from %s (returns %s)", t, c.fn.Name, c.fn.Ret)
		}
	case *ast.BreakStmt:
		if c.loops == 0 {
			c.errorf(s.Pos(), "break outside a loop")
		}
	case *ast.ContinueStmt:
		if c.loops == 0 {
			c.errorf(s.Pos(), "continue outside a loop")
		}
	}
}

// checkLocalDecl validates and declares a local variable. Returns the new
// Local, or nil on error.
func (c *checker) checkLocalDecl(d *ast.VarDecl) *Local {
	if d.Specs.Any() {
		c.errorf(d.Pos(), "NCL specifiers are not allowed on local variables")
	}
	var ty *types.Type
	if isAutoPtr(d.Type) {
		if d.Init == nil {
			c.errorf(d.Pos(), "auto requires an initializer")
			return nil
		}
		it := c.checkExpr(d.Init)
		if it == nil {
			return nil
		}
		if !(it.Kind == types.Pointer && it.OptionalPtr) {
			c.errorf(d.Init.Pos(), "auto* must be initialized from a Map lookup, got %s", it)
			return nil
		}
		ty = it
	} else if isAutoValue(d.Type) {
		c.errorf(d.Pos(), "plain auto locals are not supported; spell the scalar type")
		return nil
	} else {
		ty = c.resolveType(d.Type, false)
		if ty == nil {
			return nil
		}
		if !ty.IsScalar() {
			c.errorf(d.Pos(), "local %s must be a scalar (PISA has no per-packet arrays or raw pointers); got %s", d.Name, ty)
			return nil
		}
		if d.Init != nil {
			if _, isList := d.Init.(*ast.InitList); isList {
				c.errorf(d.Init.Pos(), "braced initializers are only valid on switch memory arrays")
				return nil
			}
			it := c.checkExpr(d.Init)
			if it != nil && !types.AssignableTo(it, ty) {
				c.errorf(d.Init.Pos(), "cannot initialize %s %s with %s", ty, d.Name, it)
			}
		}
	}
	lo := &Local{Name: d.Name, Type: ty, Decl: d}
	c.declare(d.Name, lo, d.Pos())
	c.info.Decls[d] = lo
	return lo
}

func isAutoPtr(t ast.TypeExpr) bool {
	p, ok := t.(*ast.PointerType)
	if !ok {
		return false
	}
	b, ok := p.Elem.(*ast.BaseType)
	return ok && b.Name == "auto"
}

func isAutoValue(t ast.TypeExpr) bool {
	b, ok := t.(*ast.BaseType)
	return ok && b.Name == "auto"
}

// --- expressions ---

// checkExpr type-checks e, records its type, and returns it (nil on error).
func (c *checker) checkExpr(e ast.Expr) *types.Type {
	t := c.exprType(e)
	if t != nil {
		c.info.Types[e] = t
		if v, _, ok := c.constEval(e); ok {
			c.info.Consts[e] = t.Normalize(v)
		}
	}
	return t
}

func (c *checker) exprType(e ast.Expr) *types.Type {
	switch e := e.(type) {
	case *ast.IntLit:
		_, t, _ := c.constEval(e)
		return t
	case *ast.BoolLit:
		return types.BoolType
	case *ast.StringLit:
		return types.LabelType
	case *ast.InitList:
		c.errorf(e.Pos(), "initializer lists are only valid on declarations")
		return nil
	case *ast.Ident:
		return c.identType(e)
	case *ast.Unary:
		return c.unaryType(e)
	case *ast.Binary:
		return c.binaryType(e)
	case *ast.Assign:
		return c.assignType(e)
	case *ast.Cond:
		ct := c.checkExpr(e.C)
		if ct != nil && !types.Truthy(ct) {
			c.errorf(e.C.Pos(), "conditional test has type %s", ct)
		}
		a := c.checkExpr(e.Then)
		b := c.checkExpr(e.Else)
		if a == nil || b == nil {
			return nil
		}
		if a.Kind == types.Bool && b.Kind == types.Bool {
			return types.BoolType
		}
		ct2, ok := types.Common(a, b)
		if !ok {
			c.errorf(e.Pos(), "incompatible conditional arms: %s and %s", a, b)
			return nil
		}
		return ct2
	case *ast.Index:
		return c.indexType(e)
	case *ast.Member:
		return c.memberType(e)
	case *ast.Call:
		return c.callType(e)
	case *ast.Cast:
		to := c.resolveType(e.To, false)
		x := c.checkExpr(e.X)
		if to == nil || x == nil {
			return nil
		}
		if !to.IsScalar() {
			c.errorf(e.Pos(), "cannot cast to %s", to)
			return nil
		}
		if !x.IsScalar() {
			c.errorf(e.X.Pos(), "cannot cast %s to %s", x, to)
			return nil
		}
		return to
	case *ast.SizeofType:
		if ty := c.resolveType(e.To, false); ty == nil {
			return nil
		}
		return types.U64
	case *ast.SizeofExpr:
		if x := c.checkExpr(e.X); x == nil {
			return nil
		}
		return types.U64
	}
	c.errorf(e.Pos(), "unsupported expression")
	return nil
}

func (c *checker) identType(e *ast.Ident) *types.Type {
	obj := c.lookup(e.Name)
	if obj == nil {
		c.errorf(e.Pos(), "undeclared identifier %s", e.Name)
		return nil
	}
	c.info.Idents[e] = obj
	switch o := obj.(type) {
	case *Local:
		return o.Type
	case *Param:
		if o.Ext {
			// _ext_ params only exist on incoming kernels (checked at
			// declaration); they are host pointers.
		}
		return o.Type
	case *Global:
		if o.Const {
			return o.Type
		}
		c.noteSwitchState(e.Pos(), o.Name)
		return o.Type
	case *Func:
		c.errorf(e.Pos(), "%s is a function; call it", o.Name)
		return nil
	case Builtin:
		switch o.Name {
		case BWindow, BLocation:
			c.errorf(e.Pos(), "%s is only valid with field access (%s.field)", o.Name, o.Name)
		default:
			c.errorf(e.Pos(), "%s is only valid as a call", o.Name)
		}
		return nil
	}
	return nil
}

// noteSwitchState records that the current function touches switch-side
// state, which is illegal for incoming kernels (they run on hosts).
func (c *checker) noteSwitchState(pos source.Pos, what string) {
	if fl := c.flags[c.fn]; fl != nil {
		fl.switchState = true
	}
	if c.fn != nil && c.fn.Kind == InKernel {
		c.errorf(pos, "incoming kernel %s cannot access switch memory %s; switch state exists only on switches (§4.1)", c.fn.Name, what)
	}
}

func (c *checker) unaryType(e *ast.Unary) *types.Type {
	x := c.checkExpr(e.X)
	if x == nil {
		return nil
	}
	switch e.Op {
	case token.ADD, token.SUB, token.TILDE:
		if !x.IsInteger() {
			c.errorf(e.Pos(), "operator %s requires an integer, got %s", e.Op, x)
			return nil
		}
		return types.Promote(x)
	case token.NOT:
		if !types.Truthy(x) {
			c.errorf(e.Pos(), "operator ! requires a testable value, got %s", x)
			return nil
		}
		return types.BoolType
	case token.MUL: // deref
		if x.Kind != types.Pointer {
			c.errorf(e.Pos(), "cannot dereference %s", x)
			return nil
		}
		return x.Elem
	case token.AND: // address-of
		return c.addressOfType(e)
	case token.INC, token.DEC:
		if !x.IsInteger() {
			c.errorf(e.Pos(), "%s requires an integer lvalue, got %s", e.Op, x)
			return nil
		}
		if reason := c.assignable(e.X); reason != "" {
			c.errorf(e.Pos(), "cannot modify operand of %s: %s", e.Op, reason)
		}
		return x
	}
	c.errorf(e.Pos(), "unsupported unary operator %s", e.Op)
	return nil
}

// addressOfType types &expr. Addresses exist only as compile-time views
// for memcpy; they cannot be stored.
func (c *checker) addressOfType(e *ast.Unary) *types.Type {
	x := c.info.Types[e.X]
	if x == nil {
		return nil
	}
	switch e.X.(type) {
	case *ast.Index, *ast.Ident, *ast.Member:
		if x.IsScalar() || x.Kind == types.Array {
			if x.Kind == types.Array {
				return types.PointerTo(x.Elem)
			}
			return types.PointerTo(x)
		}
	}
	c.errorf(e.Pos(), "cannot take the address of this expression")
	return nil
}

func (c *checker) binaryType(e *ast.Binary) *types.Type {
	x := c.checkExpr(e.X)
	y := c.checkExpr(e.Y)
	if x == nil || y == nil {
		return nil
	}
	switch e.Op {
	case token.LAND, token.LOR:
		if !types.Truthy(x) || !types.Truthy(y) {
			c.errorf(e.Pos(), "operator %s requires testable operands, got %s and %s", e.Op, x, y)
			return nil
		}
		return types.BoolType
	case token.EQ, token.NE:
		if x.Kind == types.Bool && y.Kind == types.Bool {
			return types.BoolType
		}
		if _, ok := types.Common(x, y); ok {
			return types.BoolType
		}
		c.errorf(e.Pos(), "cannot compare %s and %s", x, y)
		return nil
	case token.LT, token.GT, token.LE, token.GE:
		if _, ok := types.Common(x, y); ok {
			return types.BoolType
		}
		c.errorf(e.Pos(), "cannot order %s and %s", x, y)
		return nil
	}
	ct, ok := types.Common(x, y)
	if !ok {
		c.errorf(e.Pos(), "operator %s requires integers, got %s and %s", e.Op, x, y)
		return nil
	}
	return ct
}

func (c *checker) assignType(e *ast.Assign) *types.Type {
	lt := c.checkExpr(e.LHS)
	rt := c.checkExpr(e.RHS)
	if lt == nil || rt == nil {
		return nil
	}
	if reason := c.assignable(e.LHS); reason != "" {
		c.errorf(e.LHS.Pos(), "cannot assign: %s", reason)
		return nil
	}
	if e.Op == token.ASSIGN {
		if !types.AssignableTo(rt, lt) {
			c.errorf(e.RHS.Pos(), "cannot assign %s to %s", rt, lt)
			return nil
		}
		return lt
	}
	// Compound assignment requires integer arithmetic on both sides.
	if !lt.IsInteger() || !rt.IsInteger() {
		c.errorf(e.Pos(), "operator %s requires integers, got %s and %s", e.Op, lt, rt)
		return nil
	}
	return lt
}

// assignable returns "" when e is a writable lvalue in the current
// function, or a human-readable reason why not.
func (c *checker) assignable(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		switch o := c.info.Idents[e].(type) {
		case *Local:
			if o.Type.Kind == types.Pointer {
				return "Map-lookup pointers cannot be reseated"
			}
			return ""
		case *Param:
			if o.Type.Kind == types.Pointer {
				return "window array parameters cannot be reseated"
			}
			return "" // scalar window element: writable window data
		case *Global:
			if o.Const {
				return o.Name + " is a compile-time constant"
			}
			if o.Ctrl {
				return o.Name + " is _ctrl_: read-only from kernel code, written by hosts (§4.1)"
			}
			if o.IsMap() || o.IsBloom() {
				return o.Name + " is managed through its operations"
			}
			return ""
		}
		return "not a variable"
	case *ast.Unary:
		if e.Op != token.MUL {
			return "not an lvalue"
		}
		pt := c.info.Types[e.X]
		if pt == nil {
			return "untyped operand"
		}
		if pt.OptionalPtr {
			return "Map values are installed by the control plane, not kernel writes (§4.3)"
		}
		return c.pointerWritable(e.X)
	case *ast.Index:
		bt := c.info.Types[e.X]
		if bt == nil {
			return "untyped base"
		}
		switch bt.Kind {
		case types.Array:
			return c.assignable(e.X) // inherits writability from the array
		case types.Map:
			return "Map entries are installed by the control plane"
		case types.Pointer:
			if bt.OptionalPtr {
				return "Map values are read-only in kernels"
			}
			return c.pointerWritable(e.X)
		}
		return "cannot index " + bt.String()
	case *ast.Member:
		return "window and location fields are read-only in kernels"
	}
	return "not an lvalue"
}

// pointerWritable reports whether the pointer-valued expression e refers
// to writable storage (window data always is; _ext_ host pointers are).
func (c *checker) pointerWritable(e ast.Expr) string {
	if id, ok := e.(*ast.Ident); ok {
		if p, ok := c.info.Idents[id].(*Param); ok {
			_ = p
			return "" // window data and _ext_ host memory are writable
		}
	}
	// &expr views from address-of are writable iff the base is.
	if u, ok := e.(*ast.Unary); ok && u.Op == token.AND {
		return c.assignable(u.X)
	}
	return ""
}

func (c *checker) indexType(e *ast.Index) *types.Type {
	bt := c.checkExpr(e.X)
	it := c.checkExpr(e.Idx)
	if bt == nil || it == nil {
		return nil
	}
	switch bt.Kind {
	case types.Array:
		if !it.IsInteger() {
			c.errorf(e.Idx.Pos(), "array index must be an integer, got %s", it)
			return nil
		}
		return bt.Elem
	case types.Pointer:
		if bt.OptionalPtr {
			c.errorf(e.Pos(), "Map-lookup pointers refer to a single value; dereference with * instead of indexing")
			return nil
		}
		if !it.IsInteger() {
			c.errorf(e.Idx.Pos(), "index must be an integer, got %s", it)
			return nil
		}
		return bt.Elem
	case types.Map:
		if !types.AssignableTo(it, bt.Key) {
			c.errorf(e.Idx.Pos(), "Map key must be %s, got %s", bt.Key, it)
			return nil
		}
		return types.OptionalPointerTo(bt.Val)
	}
	c.errorf(e.Pos(), "cannot index %s", bt)
	return nil
}

func (c *checker) memberType(e *ast.Member) *types.Type {
	if e.Arrow {
		c.errorf(e.Pos(), "-> is not supported; NCL has no struct pointers")
		return nil
	}
	id, ok := e.X.(*ast.Ident)
	if !ok {
		c.errorf(e.Pos(), "field access is only valid on window, location, or an ncl::Bloom")
		return nil
	}
	obj := c.lookup(id.Name)
	c.info.Idents[id] = obj
	switch o := obj.(type) {
	case Builtin:
		switch o.Name {
		case BWindow:
			if t, ok := WindowBuiltinFields[e.Sel]; ok {
				c.info.Types[e.X] = types.VoidType // marker; window has no value type
				return t
			}
			for _, wf := range c.info.WinFields {
				if wf.Name == e.Sel {
					c.info.Types[e.X] = types.VoidType
					return wf.Type
				}
			}
			c.errorf(e.SelPos, "window has no field %s (builtin: seq, len, from, sender, wid; plus _win_ extensions)", e.Sel)
			return nil
		case BLocation:
			if c.fn != nil && c.fn.Kind == InKernel {
				c.errorf(e.Pos(), "location is meaningless in incoming kernels (they run on every host)")
				return nil
			}
			if fl := c.flags[c.fn]; fl != nil {
				fl.location = true
			}
			if t, ok := LocationFields[e.Sel]; ok {
				c.info.Types[e.X] = types.VoidType
				return t
			}
			c.errorf(e.SelPos, "location has no field %s (available: id)", e.Sel)
			return nil
		}
	case *Global:
		if o.IsBloom() || o.IsSketch() {
			// Methods are handled by callType; reaching here means the
			// method was not called.
			c.errorf(e.Pos(), "%s operations must be called (e.g. %s.add(...))", o.Type, o.Name)
			return nil
		}
	}
	c.errorf(e.Pos(), "field access is only valid on window, location, or an ncl::Bloom")
	return nil
}

func (c *checker) callType(e *ast.Call) *types.Type {
	// Bloom method calls: seen.add(k), seen.test(k).
	if m, ok := e.Fun.(*ast.Member); ok {
		return c.bloomCallType(e, m)
	}
	id, ok := e.Fun.(*ast.Ident)
	if !ok {
		c.errorf(e.Pos(), "calls must name a function")
		return nil
	}
	obj := c.lookup(id.Name)
	if obj == nil {
		c.errorf(id.Pos(), "undeclared function %s", id.Name)
		return nil
	}
	c.info.Idents[id] = obj
	switch o := obj.(type) {
	case Builtin:
		return c.builtinCallType(e, o.Name)
	case *Func:
		return c.helperCallType(e, o)
	}
	c.errorf(e.Pos(), "%s is not callable", id.Name)
	return nil
}

func (c *checker) bloomCallType(e *ast.Call, m *ast.Member) *types.Type {
	id, ok := m.X.(*ast.Ident)
	if !ok {
		c.errorf(e.Pos(), "method calls are only valid on ncl::Bloom and ncl::CountMin globals")
		return nil
	}
	g, ok := c.lookup(id.Name).(*Global)
	if !ok || (!g.IsBloom() && !g.IsSketch()) {
		c.errorf(e.Pos(), "%s is not an ncl::Bloom or ncl::CountMin", id.Name)
		return nil
	}
	c.info.Idents[id] = g
	c.noteSwitchState(m.SelPos, g.Name)
	intArg := func(i int, what string) {
		at := c.checkExpr(e.Args[i])
		if at != nil && !at.IsInteger() {
			c.errorf(e.Args[i].Pos(), "%s must be an integer, got %s", what, at)
		}
	}
	if g.IsSketch() {
		switch m.Sel {
		case "add":
			if len(e.Args) != 2 {
				c.errorf(e.Pos(), "%s.add takes (key, amount)", g.Name)
				return nil
			}
			intArg(0, "CountMin key")
			intArg(1, "CountMin amount")
			return types.VoidType
		case "estimate":
			if len(e.Args) != 1 {
				c.errorf(e.Pos(), "%s.estimate takes exactly one key argument", g.Name)
				return nil
			}
			intArg(0, "CountMin key")
			return types.U32
		}
		c.errorf(m.SelPos, "ncl::CountMin has no operation %s (available: add, estimate)", m.Sel)
		return nil
	}
	if len(e.Args) != 1 {
		c.errorf(e.Pos(), "%s.%s takes exactly one key argument", g.Name, m.Sel)
		return nil
	}
	intArg(0, "Bloom key")
	switch m.Sel {
	case "add":
		return types.VoidType
	case "test":
		return types.BoolType
	}
	c.errorf(m.SelPos, "ncl::Bloom has no operation %s (available: add, test)", m.Sel)
	return nil
}

func (c *checker) builtinCallType(e *ast.Call, name string) *types.Type {
	switch name {
	case BMemcpy:
		if len(e.Args) != 3 {
			c.errorf(e.Pos(), "memcpy takes (dst, src, bytes)")
			return nil
		}
		dt := c.checkExpr(e.Args[0])
		st := c.checkExpr(e.Args[1])
		nt := c.checkExpr(e.Args[2])
		if dt != nil && !memcpyOperand(dt) {
			c.errorf(e.Args[0].Pos(), "memcpy destination must be a pointer or array, got %s", dt)
		}
		if st != nil && !memcpyOperand(st) {
			c.errorf(e.Args[1].Pos(), "memcpy source must be a pointer or array, got %s", st)
		}
		if nt != nil && !nt.IsInteger() {
			c.errorf(e.Args[2].Pos(), "memcpy length must be an integer, got %s", nt)
		}
		if dt != nil {
			if reason := c.memcpyDstWritable(e.Args[0], dt); reason != "" {
				c.errorf(e.Args[0].Pos(), "memcpy destination not writable: %s", reason)
			}
		}
		return types.VoidType
	case BPass, BDrop, BReflect, BBcast:
		if c.fn != nil && c.fn.Kind == InKernel {
			c.errorf(e.Pos(), "forwarding decisions (%s) are only valid in outgoing kernels; the window has already arrived (§4.1)", name)
		}
		if fl := c.flags[c.fn]; fl != nil {
			fl.forwarding = true
		}
		if name == BPass {
			if len(e.Args) > 1 {
				c.errorf(e.Pos(), "_pass takes at most one location label")
			}
			if len(e.Args) == 1 {
				at := c.checkExpr(e.Args[0])
				if at != nil && at.Kind != types.Label {
					c.errorf(e.Args[0].Pos(), "_pass label must be a string literal AND label")
				}
			}
		} else if len(e.Args) != 0 {
			c.errorf(e.Pos(), "%s takes no arguments", name)
		}
		return types.VoidType
	case BWindow, BLocation:
		c.errorf(e.Pos(), "%s is not callable", name)
		return nil
	}
	c.errorf(e.Pos(), "unknown builtin %s", name)
	return nil
}

// memcpyDstWritable validates the write side of memcpy.
func (c *checker) memcpyDstWritable(dst ast.Expr, dt *types.Type) string {
	switch d := dst.(type) {
	case *ast.Ident:
		if _, isParam := c.info.Idents[d].(*Param); isParam {
			return ""
		}
		return c.assignable(d)
	case *ast.Unary:
		if d.Op == token.AND {
			return c.assignable(d.X)
		}
	case *ast.Index:
		// e.g. Cache[*idx] (a row of a 2D array): writable iff the array is.
		base := d.X
		for {
			if ix, ok := base.(*ast.Index); ok {
				base = ix.X
				continue
			}
			break
		}
		if id, ok := base.(*ast.Ident); ok {
			return c.assignable(id)
		}
	}
	return ""
}

func memcpyOperand(t *types.Type) bool {
	return t.Kind == types.Pointer || t.Kind == types.Array
}

func (c *checker) helperCallType(e *ast.Call, f *Func) *types.Type {
	if f.Kind != Helper {
		c.errorf(e.Pos(), "%s %s cannot be called from code; kernels are invoked by the runtime", f.Kind, f.Name)
		return nil
	}
	if f == c.fn {
		c.errorf(e.Pos(), "recursive call to %s; recursion cannot map to a PISA pipeline (§5)", f.Name)
		return nil
	}
	// Helpers are defined before use; calls ahead of the definition would
	// not resolve (lookup order), so transitively flagged info is final.
	if fl, ok := c.flags[f]; ok {
		cur := c.flags[c.fn]
		if cur != nil {
			cur.forwarding = cur.forwarding || fl.forwarding
			cur.switchState = cur.switchState || fl.switchState
			cur.location = cur.location || fl.location
		}
		if c.fn.Kind == InKernel {
			if fl.forwarding {
				c.errorf(e.Pos(), "helper %s makes forwarding decisions and cannot be used from incoming kernel %s", f.Name, c.fn.Name)
			}
			if fl.switchState {
				c.errorf(e.Pos(), "helper %s touches switch memory and cannot be used from incoming kernel %s", f.Name, c.fn.Name)
			}
			if fl.location {
				c.errorf(e.Pos(), "helper %s reads location and cannot be used from incoming kernel %s", f.Name, c.fn.Name)
			}
		}
	}
	if len(e.Args) != len(f.Params) {
		c.errorf(e.Pos(), "%s takes %d arguments, got %d", f.Name, len(f.Params), len(e.Args))
		return f.Ret
	}
	for i, a := range e.Args {
		at := c.checkExpr(a)
		if at == nil {
			continue
		}
		pt := f.Params[i].Type
		if !types.AssignableTo(at, pt) {
			c.errorf(a.Pos(), "argument %d of %s: cannot use %s as %s", i+1, f.Name, at, pt)
		}
	}
	return f.Ret
}
