package sema

import (
	"ncl/internal/ncl/ast"
	"ncl/internal/ncl/source"
	"ncl/internal/ncl/token"
	"ncl/internal/ncl/types"
)

// constEval evaluates a compile-time constant expression. It returns the
// value (canonical 64-bit two's complement), the inferred type, and
// whether the expression is constant. It never reports diagnostics; the
// caller decides whether non-constness is an error.
func (c *checker) constEval(e ast.Expr) (uint64, *types.Type, bool) {
	switch e := e.(type) {
	case *ast.IntLit:
		// Literal typing: int32 if it fits, otherwise int64/uint64.
		v := e.Value
		switch {
		case v <= 0x7FFFFFFF:
			return v, types.I32, true
		case v <= 0x7FFFFFFFFFFFFFFF:
			return v, types.I64, true
		default:
			return v, types.U64, true
		}
	case *ast.BoolLit:
		if e.Value {
			return 1, types.BoolType, true
		}
		return 0, types.BoolType, true
	case *ast.Ident:
		if g, ok := c.info.GlobalsByName[e.Name]; ok && g.Const && len(g.Init) == 1 {
			return g.Init[0], g.Type, true
		}
		return 0, nil, false
	case *ast.Unary:
		if e.Postfix {
			return 0, nil, false
		}
		v, ty, ok := c.constEval(e.X)
		if !ok {
			return 0, nil, false
		}
		switch e.Op {
		case token.ADD:
			return v, ty, true
		case token.SUB:
			t := types.Promote(ty)
			return t.Normalize(-v), t, true
		case token.TILDE:
			t := types.Promote(ty)
			return t.Normalize(^v), t, true
		case token.NOT:
			if v == 0 {
				return 1, types.BoolType, true
			}
			return 0, types.BoolType, true
		}
		return 0, nil, false
	case *ast.Binary:
		return c.constBinary(e)
	case *ast.Cond:
		cv, _, ok := c.constEval(e.C)
		if !ok {
			return 0, nil, false
		}
		if cv != 0 {
			return c.constEval(e.Then)
		}
		return c.constEval(e.Else)
	case *ast.Cast:
		ty := c.resolveTypeQuiet(e.To)
		if ty == nil || !ty.IsScalar() {
			return 0, nil, false
		}
		v, _, ok := c.constEval(e.X)
		if !ok {
			return 0, nil, false
		}
		return ty.Normalize(v), ty, true
	case *ast.SizeofType:
		ty := c.resolveTypeQuiet(e.To)
		if ty == nil {
			return 0, nil, false
		}
		if ty.Kind == types.Pointer {
			return 8, types.U64, true
		}
		return uint64(ty.SizeBytes()), types.U64, true
	case *ast.SizeofExpr:
		// sizeof expr needs the checked type; only available if the
		// expression is itself constant-typed here.
		_, ty, ok := c.constEval(e.X)
		if !ok || ty == nil {
			return 0, nil, false
		}
		return uint64(ty.SizeBytes()), types.U64, true
	}
	return 0, nil, false
}

// resolveTypeQuiet resolves a type without reporting diagnostics (used
// during constant evaluation where failure just means "not constant").
func (c *checker) resolveTypeQuiet(t ast.TypeExpr) *types.Type {
	scratch := checker{info: c.info, diags: &source.DiagList{}}
	return scratch.resolveType(t, false)
}

func (c *checker) constBinary(e *ast.Binary) (uint64, *types.Type, bool) {
	x, xt, ok := c.constEval(e.X)
	if !ok {
		return 0, nil, false
	}
	y, yt, ok := c.constEval(e.Y)
	if !ok {
		return 0, nil, false
	}
	switch e.Op {
	case token.LAND:
		if x != 0 && y != 0 {
			return 1, types.BoolType, true
		}
		return 0, types.BoolType, true
	case token.LOR:
		if x != 0 || y != 0 {
			return 1, types.BoolType, true
		}
		return 0, types.BoolType, true
	}
	ct, ok2 := types.Common(orI32(xt), orI32(yt))
	if !ok2 {
		return 0, nil, false
	}
	x, y = ct.Normalize(x), ct.Normalize(y)
	switch e.Op {
	case token.EQ, token.NE, token.LT, token.GT, token.LE, token.GE:
		var b bool
		if ct.Signed {
			sx, sy := int64(x), int64(y)
			switch e.Op {
			case token.EQ:
				b = sx == sy
			case token.NE:
				b = sx != sy
			case token.LT:
				b = sx < sy
			case token.GT:
				b = sx > sy
			case token.LE:
				b = sx <= sy
			case token.GE:
				b = sx >= sy
			}
		} else {
			switch e.Op {
			case token.EQ:
				b = x == y
			case token.NE:
				b = x != y
			case token.LT:
				b = x < y
			case token.GT:
				b = x > y
			case token.LE:
				b = x <= y
			case token.GE:
				b = x >= y
			}
		}
		if b {
			return 1, types.BoolType, true
		}
		return 0, types.BoolType, true
	}
	v, ok3 := EvalArith(e.Op, x, y, ct)
	if !ok3 {
		return 0, nil, false
	}
	return v, ct, true
}

func orI32(t *types.Type) *types.Type {
	if t == nil || !t.IsInteger() {
		if t != nil && t.Kind == types.Bool {
			return types.Promote(t)
		}
		return types.I32
	}
	return t
}

// EvalArith evaluates one arithmetic/bitwise binary op over canonical
// values of type t. Division or modulo by zero returns ok=false (constant
// folding must not fold UB; the simulator traps at runtime instead).
// Shift counts are masked to the width, like hardware.
func EvalArith(op token.Kind, x, y uint64, t *types.Type) (uint64, bool) {
	switch op {
	case token.ADD:
		return t.Normalize(x + y), true
	case token.SUB:
		return t.Normalize(x - y), true
	case token.MUL:
		return t.Normalize(x * y), true
	case token.DIV:
		if y == 0 {
			return 0, false
		}
		if t.Signed {
			return t.Normalize(uint64(int64(x) / int64(y))), true
		}
		return t.Normalize(x / y), true
	case token.MOD:
		if y == 0 {
			return 0, false
		}
		if t.Signed {
			return t.Normalize(uint64(int64(x) % int64(y))), true
		}
		return t.Normalize(x % y), true
	case token.AND:
		return t.Normalize(x & y), true
	case token.OR:
		return t.Normalize(x | y), true
	case token.XOR:
		return t.Normalize(x ^ y), true
	case token.SHL:
		return t.Normalize(x << (y & uint64(t.Width-1))), true
	case token.SHR:
		sh := y & uint64(t.Width-1)
		if t.Signed {
			return t.Normalize(uint64(int64(x) >> sh)), true
		}
		return t.Normalize((x & types.TruncMask(t.Width)) >> sh), true
	}
	return 0, false
}
