package parser

import (
	"strings"
	"testing"

	"ncl/internal/ncl/ast"
	"ncl/internal/ncl/source"
)

func parse(t *testing.T, src string) (*ast.File, *source.DiagList) {
	t.Helper()
	var diags source.DiagList
	f := ParseSource("test.ncl", src, &diags)
	return f, &diags
}

func parseOK(t *testing.T, src string) *ast.File {
	t.Helper()
	f, diags := parse(t, src)
	if diags.HasErrors() {
		t.Fatalf("parse errors:\n%v\nsource:\n%s", diags.Err(), src)
	}
	return f
}

func expectDump(t *testing.T, src, want string) {
	t.Helper()
	f := parseOK(t, src)
	got := ast.Dump(f)
	if got != want {
		t.Errorf("dump mismatch\n got: %s\nwant: %s", got, want)
	}
}

func expectError(t *testing.T, src, fragment string) {
	t.Helper()
	_, diags := parse(t, src)
	if !diags.HasErrors() {
		t.Fatalf("expected error containing %q, got none\nsource: %s", fragment, src)
	}
	if !strings.Contains(diags.Err().Error(), fragment) {
		t.Errorf("error %v does not contain %q", diags.Err(), fragment)
	}
}

// --- declarations ---

func TestGlobalSwitchMemory(t *testing.T) {
	expectDump(t, `_net_ _at_("s1") int accum[16] = {0};`,
		`(file (var _net_ _at_("s1") [16]int accum = {0}))`)
}

func TestCtrlVariable(t *testing.T) {
	expectDump(t, `_net_ _at_("s1") _ctrl_ unsigned nworkers;`,
		`(file (var _net_ _ctrl_ _at_("s1") unsigned nworkers))`)
}

func TestMultiDimArray(t *testing.T) {
	expectDump(t, `_net_ _at_("s1") char Cache[256][128] = {{0}};`,
		`(file (var _net_ _at_("s1") [256][128]int8_t Cache = {{0}}))`)
}

func TestMapTemplate(t *testing.T) {
	expectDump(t, `_net_ _at_("s1") ncl::Map<uint64_t, uint8_t, 256> Idx;`,
		`(file (var _net_ _at_("s1") ncl::Map<uint64_t,uint8_t,256> Idx))`)
}

func TestBloomTemplate(t *testing.T) {
	expectDump(t, `_net_ ncl::Bloom<1024, 3> seen;`,
		`(file (var _net_ ncl::Bloom<1024,3> seen))`)
}

func TestOutKernel(t *testing.T) {
	expectDump(t, `_net_ _out_ void f(int *data) { _drop(); }`,
		`(file (func _net_ _out_ void f (*int data) (block (call _drop))))`)
}

func TestInKernelWithExtParams(t *testing.T) {
	expectDump(t, `_net_ _in_ void result(int *data, _ext_ int *hdata, _ext_ bool *done) {}`,
		`(file (func _net_ _in_ void result (*int data, _ext_ *int hdata, _ext_ *bool done) (block)))`)
}

func TestWinExtensionField(t *testing.T) {
	expectDump(t, `_net_ _win_ unsigned len;`,
		`(file (var _net_ _win_ unsigned len))`)
}

func TestIntCombos(t *testing.T) {
	f := parseOK(t, `
unsigned a;
unsigned int b;
signed char c;
unsigned char d;
short e;
unsigned short g;
long h;
unsigned long i;
long long j;
`)
	want := []string{"unsigned", "unsigned", "int8_t", "uint8_t", "int16_t", "uint16_t", "int64_t", "uint64_t", "int64_t"}
	if len(f.Decls) != len(want) {
		t.Fatalf("decls = %d, want %d", len(f.Decls), len(want))
	}
	for i, d := range f.Decls {
		vd := d.(*ast.VarDecl)
		bt := vd.Type.(*ast.BaseType)
		if bt.Name != want[i] {
			t.Errorf("decl %d type = %s, want %s", i, bt.Name, want[i])
		}
	}
}

// --- statements and expressions ---

func TestForLoopWithDecl(t *testing.T) {
	expectDump(t,
		`_net_ _out_ void k(int *d) { for (unsigned i = 0; i < 4; ++i) d[i] += 1; }`,
		`(file (func _net_ _out_ void k (*int d) (block (for (var unsigned i = 0) (< i 4) (++ i) (+= (index d i) 1)))))`)
}

func TestIfElseChain(t *testing.T) {
	expectDump(t,
		`_net_ _out_ void k(int *d) { if (d[0]) { _drop(); } else if (d[1]) _pass(); else _reflect(); }`,
		`(file (func _net_ _out_ void k (*int d) (block (if (index d 0) (block (call _drop)) (if (index d 1) (call _pass) (call _reflect))))))`)
}

func TestConditionDecl(t *testing.T) {
	// Fig. 5's `if (auto *idx = Idx[key])`.
	expectDump(t,
		`_net_ _out_ void k(uint64_t key) { if (auto *idx = Idx[key]) { Valid[*idx] = false; } }`,
		`(file (func _net_ _out_ void k (uint64_t key) (block (if (var *auto idx = (index Idx key)) (block (= (index Valid (* idx)) false))))))`)
}

func TestMemberAccess(t *testing.T) {
	expectDump(t,
		`_net_ _out_ void k(int *d) { unsigned base = window.seq * window.len; }`,
		`(file (func _net_ _out_ void k (*int d) (block (var unsigned base = (* (. window seq) (. window len))))))`)
}

func TestPrecedence(t *testing.T) {
	expectDump(t, `int x = 1 + 2 * 3;`, `(file (var int x = (+ 1 (* 2 3))))`)
	expectDump(t, `int y = (1 + 2) * 3;`, `(file (var int y = (* (+ 1 2) 3)))`)
	expectDump(t, `bool b = 1 < 2 == true;`, `(file (var bool b = (== (< 1 2) true)))`)
	expectDump(t, `int z = 1 << 2 + 3;`, `(file (var int z = (<< 1 (+ 2 3))))`)
	expectDump(t, `bool c = 1 == 2 || 3 == 4 && 5 == 6;`,
		`(file (var bool c = (|| (== 1 2) (&& (== 3 4) (== 5 6)))))`)
}

func TestAssignRightAssoc(t *testing.T) {
	expectDump(t, `_net_ _out_ void k(int *d) { d[0] = d[1] = 2; }`,
		`(file (func _net_ _out_ void k (*int d) (block (= (index d 0) (= (index d 1) 2)))))`)
}

func TestTernary(t *testing.T) {
	expectDump(t, `int x = 1 ? 2 : 3;`, `(file (var int x = (?: 1 2 3)))`)
	expectDump(t, `int y = 1 ? 2 : 3 ? 4 : 5;`, `(file (var int y = (?: 1 2 (?: 3 4 5))))`)
}

func TestUnaryOps(t *testing.T) {
	expectDump(t, `_net_ _out_ void k(int *d) { d[0] = -*d + ~d[1] + !d[2]; }`,
		`(file (func _net_ _out_ void k (*int d) (block (= (index d 0) (+ (+ (- (* d)) (~ (index d 1))) (! (index d 2)))))))`)
}

func TestIncDecPrePost(t *testing.T) {
	expectDump(t, `_net_ _out_ void k(int *d) { ++d[0]; d[1]++; --d[2]; d[3]--; }`,
		`(file (func _net_ _out_ void k (*int d) (block (++ (index d 0)) (post++ (index d 1)) (-- (index d 2)) (post-- (index d 3)))))`)
}

func TestCast(t *testing.T) {
	expectDump(t, `int x = (int)4;`, `(file (var int x = (cast int 4)))`)
	expectDump(t, `unsigned y = (unsigned)(1 + 2);`, `(file (var unsigned y = (cast unsigned (+ 1 2))))`)
	expectDump(t, `uint64_t z = (uint64_t)7;`, `(file (var uint64_t z = (cast uint64_t 7)))`)
}

func TestSizeof(t *testing.T) {
	expectDump(t, `int a = sizeof(int);`, `(file (var int a = (sizeof-type int)))`)
	expectDump(t, `int b = sizeof(uint64_t);`, `(file (var int b = (sizeof-type uint64_t)))`)
}

func TestHexLiterals(t *testing.T) {
	expectDump(t, `unsigned m = 0xFF;`, `(file (var unsigned m = 255))`)
}

func TestAddressOf(t *testing.T) {
	expectDump(t, `_net_ _out_ void k(int *d) { memcpy(d, &accum[4], 8); }`,
		`(file (func _net_ _out_ void k (*int d) (block (call memcpy d (& (index accum 4)) 8))))`)
}

func TestWhileLoop(t *testing.T) {
	expectDump(t, `_net_ _out_ void k(int *d) { while (d[0] < 4) d[0]++; }`,
		`(file (func _net_ _out_ void k (*int d) (block (while (< (index d 0) 4) (post++ (index d 0))))))`)
}

func TestBreakContinueReturn(t *testing.T) {
	expectDump(t, `_net_ _out_ void k(int *d) { for (int i = 0; i < 4; ++i) { if (d[i]) break; continue; } return; }`,
		`(file (func _net_ _out_ void k (*int d) (block (for (var int i = 0) (< i 4) (++ i) (block (if (index d i) (break)) (continue))) (return))))`)
}

func TestCompoundAssignOps(t *testing.T) {
	expectDump(t, `_net_ _out_ void k(int *d) { d[0] -= 1; d[1] *= 2; d[2] /= 3; d[3] %= 4; d[4] &= 5; d[5] |= 6; d[6] ^= 7; d[7] <<= 1; d[8] >>= 2; }`,
		`(file (func _net_ _out_ void k (*int d) (block (-= (index d 0) 1) (*= (index d 1) 2) (/= (index d 2) 3) (%= (index d 3) 4) (&= (index d 4) 5) (|= (index d 5) 6) (^= (index d 6) 7) (<<= (index d 7) 1) (>>= (index d 8) 2))))`)
}

// --- paper programs verbatim ---

// Fig. 4 of the paper: synchronous AllReduce (switch/incoming kernels only;
// the host main() is Go API in this reproduction).
const fig4 = `
#define DATA_LEN 64
#define WIN_LEN 8

_net_ _at_("s1") int accum[DATA_LEN] = {0};
_net_ _at_("s1") unsigned count[DATA_LEN/WIN_LEN] = {0};
_net_ _at_("s1") _ctrl_ unsigned nworkers;

_net_ _out_ void allreduce(int *data) {
    unsigned base = window.seq * window.len;
    for (unsigned i = 0; i < window.len; ++i)
        accum[base + i] += data[i];
    if (++count[window.seq] == nworkers) {
        memcpy(data, &accum[base], window.len * 4);
        count[window.seq] = 0; _bcast();
    } else { _drop(); }
}

_net_ _in_ void result(int *data, _ext_ int *hdata, _ext_ bool *done) {
    for (unsigned i = 0; i < window.len; ++i)
        hdata[window.seq * window.len + i] = data[i];
    *done = true;
}
`

func TestPaperFig4Parses(t *testing.T) {
	f := parseOK(t, fig4)
	if len(f.Decls) != 5 {
		t.Fatalf("decls = %d, want 5", len(f.Decls))
	}
	ar, ok := f.Decls[3].(*ast.FuncDecl)
	if !ok || ar.Name != "allreduce" {
		t.Fatalf("decl 3 = %v, want allreduce kernel", f.Decls[3])
	}
	if !ar.Specs.Net || !ar.Specs.Out {
		t.Error("allreduce must be _net_ _out_")
	}
	res := f.Decls[4].(*ast.FuncDecl)
	if !res.Specs.In || res.Name != "result" {
		t.Error("result must be an _in_ kernel")
	}
	if len(res.Params) != 3 || res.Params[0].Ext || !res.Params[1].Ext || !res.Params[2].Ext {
		t.Errorf("result params _ext_ flags wrong: %+v", res.Params)
	}
}

// Fig. 5 of the paper: in-network KVS cache (GET, PUT).
const fig5 = `
_net_ _at_("s1") ncl::Map<uint64_t, uint8_t, 256> Idx;
_net_ _at_("s1") char Cache[256][128] = {{0}};
_net_ _at_("s1") bool Valid[256] = {false};

_net_ _out_ void query(uint64_t key, char *val, bool update) {
    if (window.from != SERVER && update) {            // client PUT
        if (auto *idx = Idx[key]) Valid[*idx] = false;
    } else if (window.from != SERVER) {               // client GET
        if (auto *idx = Idx[key]) {                   // hit
            if (Valid[*idx]) {
                memcpy(val, Cache[*idx], 128); _reflect(); } }
    } else if (update) {                              // server update
        auto *idx = Idx[key]; memcpy(Cache[*idx], val, 128);
        Valid[*idx] = true; _drop();
    } else { }                                        // server GET response
}
`

func TestPaperFig5Parses(t *testing.T) {
	src := "#define SERVER 1\n" + fig5
	f := parseOK(t, src)
	if len(f.Decls) != 4 {
		t.Fatalf("decls = %d, want 4", len(f.Decls))
	}
	q := f.Decls[3].(*ast.FuncDecl)
	if q.Name != "query" || !q.Specs.Out {
		t.Fatalf("query kernel wrong: %v", ast.Dump(q))
	}
	if len(q.Params) != 3 {
		t.Fatalf("query params = %d, want 3", len(q.Params))
	}
	// The paper writes `_net_ _out_ query(...)` without a return type in
	// Fig. 5 line 5 (a sketch shorthand); our grammar requires the type,
	// and the test source adds `void`.
}

// --- error cases ---

func TestErrorStruct(t *testing.T) {
	expectError(t, `struct S { int x; };`, "structs are not supported")
}

func TestErrorSwitchStmt(t *testing.T) {
	expectError(t, `_net_ _out_ void k(int *d) { switch (d[0]) { } }`, "switch statements are not supported")
}

func TestErrorDoWhile(t *testing.T) {
	expectError(t, `_net_ _out_ void k(int *d) { do { } while (1); }`, "do-while")
}

func TestErrorGoto(t *testing.T) {
	expectError(t, `_net_ _out_ void k(int *d) { goto end; }`, "goto")
}

func TestErrorFloatType(t *testing.T) {
	expectError(t, `float f;`, "floating point")
}

func TestErrorDuplicateSpecifier(t *testing.T) {
	expectError(t, `_net_ _net_ int x;`, "duplicate _net_")
}

func TestErrorEmptyAtLabel(t *testing.T) {
	expectError(t, `_net_ _at_("") int x;`, "non-empty")
}

func TestErrorMissingSemi(t *testing.T) {
	expectError(t, `int x = 1`, "expected")
}

func TestErrorTemplateNoArgs(t *testing.T) {
	expectError(t, `_net_ ncl::Map Idx;`, "template arguments")
}

func TestErrorHostAPIInKernel(t *testing.T) {
	expectError(t, `_net_ _out_ void k(int *d) { ncl::out(k, d); }`, "host-side API")
}

func TestErrorRecoveryFindsMultipleErrors(t *testing.T) {
	src := `
struct A { };
int ok1;
goto_bad $;
int ok2;
`
	f, diags := parse(t, src)
	if !diags.HasErrors() {
		t.Fatal("expected errors")
	}
	// Recovery should still parse the valid declarations.
	var names []string
	for _, d := range f.Decls {
		if vd, ok := d.(*ast.VarDecl); ok {
			names = append(names, vd.Name)
		}
	}
	joined := strings.Join(names, ",")
	if !strings.Contains(joined, "ok1") || !strings.Contains(joined, "ok2") {
		t.Errorf("recovery lost declarations; got %v", names)
	}
}

func TestFuncDeclarationNoBody(t *testing.T) {
	f := parseOK(t, `_net_ _out_ void k(int *d);`)
	fd := f.Decls[0].(*ast.FuncDecl)
	if fd.Body != nil {
		t.Error("prototype should have nil body")
	}
}

func TestVoidParamList(t *testing.T) {
	f := parseOK(t, `void helper(void) { }`)
	fd := f.Decls[0].(*ast.FuncDecl)
	if len(fd.Params) != 0 {
		t.Errorf("f(void) params = %d, want 0", len(fd.Params))
	}
}

func TestPassWithLabel(t *testing.T) {
	expectDump(t, `_net_ _out_ void k(int *d) { _pass("server"); }`,
		`(file (func _net_ _out_ void k (*int d) (block (call _pass "server"))))`)
}

func TestNestedIndexAndMember(t *testing.T) {
	expectDump(t, `_net_ _out_ void k(int *d) { d[window.seq] = Cache[d[0]][2]; }`,
		`(file (func _net_ _out_ void k (*int d) (block (= (index d (. window seq)) (index (index Cache (index d 0)) 2)))))`)
}
