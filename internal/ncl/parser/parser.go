// Package parser implements a recursive-descent parser for NCL, the C/C++
// extension of "Don't You Worry 'Bout a Packet" (HotNets '21). It accepts
// the paper's example programs (Figs. 4-5) verbatim: declaration
// specifiers, kernels, switch memory with initializers, ncl::Map template
// types, condition declarations (`if (auto *idx = Idx[key])`), and the
// forwarding primitives.
package parser

import (
	"strconv"
	"strings"

	"ncl/internal/ncl/ast"
	"ncl/internal/ncl/lexer"
	"ncl/internal/ncl/source"
	"ncl/internal/ncl/token"
)

// builtinAliases is the closed set of identifier spellings the parser
// treats as type names. Keeping the set closed sidesteps C's typedef
// ambiguity without a symbol-table feedback loop.
var builtinAliases = map[string]bool{
	"uint8_t": true, "uint16_t": true, "uint32_t": true, "uint64_t": true,
	"int8_t": true, "int16_t": true, "int32_t": true, "int64_t": true,
	"size_t": true, "uintptr_t": true,
}

// Parser holds parsing state for one token stream.
type Parser struct {
	toks  []token.Token
	pos   int
	diags *source.DiagList
	fname string
}

// ParseFile preprocesses and parses an NCL source file.
func ParseFile(file *source.File, includes lexer.Includes, diags *source.DiagList) *ast.File {
	toks := lexer.Preprocess(file, includes, diags)
	p := &Parser{toks: toks, diags: diags, fname: file.Name}
	return p.parseFile()
}

// ParseSource is a convenience wrapper over ParseFile for in-memory source.
func ParseSource(name, src string, diags *source.DiagList) *ast.File {
	return ParseFile(source.NewFile(name, []byte(src)), nil, diags)
}

func (p *Parser) cur() token.Token { return p.toks[p.pos] }
func (p *Parser) peek() token.Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}
func (p *Parser) peekN(n int) token.Token {
	if p.pos+n < len(p.toks) {
		return p.toks[p.pos+n]
	}
	return p.toks[len(p.toks)-1]
}

func (p *Parser) next() token.Token {
	t := p.toks[p.pos]
	if t.Kind != token.EOF {
		p.pos++
	}
	return t
}

func (p *Parser) at(k token.Kind) bool { return p.cur().Kind == k }

func (p *Parser) accept(k token.Kind) (token.Token, bool) {
	if p.at(k) {
		return p.next(), true
	}
	return token.Token{}, false
}

func (p *Parser) expect(k token.Kind, context string) token.Token {
	if p.at(k) {
		return p.next()
	}
	p.errorf(p.cur().Pos, "expected %q %s, found %s", k.String(), context, p.cur())
	return token.Token{Kind: k, Pos: p.cur().Pos}
}

func (p *Parser) errorf(pos source.Pos, format string, args ...any) {
	p.diags.Errorf(pos, format, args...)
}

// sync skips tokens until a likely statement/declaration boundary, so one
// syntax error doesn't cascade.
func (p *Parser) sync() {
	depth := 0
	for {
		switch p.cur().Kind {
		case token.EOF:
			return
		case token.SEMI:
			if depth == 0 {
				p.next()
				return
			}
		case token.LBRACE:
			depth++
		case token.RBRACE:
			if depth == 0 {
				return
			}
			depth--
		}
		p.next()
	}
}

// ---------------------------------------------------------------------------
// Files and declarations

func (p *Parser) parseFile() *ast.File {
	f := &ast.File{Name: p.fname}
	for !p.at(token.EOF) {
		start := p.pos
		d := p.parseTopDecl()
		if d != nil {
			f.Decls = append(f.Decls, d)
		}
		if p.pos == start { // no progress; avoid infinite loop
			p.errorf(p.cur().Pos, "unexpected token %s at top level", p.cur())
			p.next()
		}
	}
	return f
}

// parseSpecifiers consumes a run of NCL declaration specifiers and const.
func (p *Parser) parseSpecifiers() ast.Specifiers {
	var s ast.Specifiers
	for {
		t := p.cur()
		switch t.Kind {
		case token.NET:
			if s.Net {
				p.errorf(t.Pos, "duplicate _net_ specifier")
			}
			s.Net = true
		case token.OUT:
			if s.Out {
				p.errorf(t.Pos, "duplicate _out_ specifier")
			}
			s.Out = true
		case token.IN:
			if s.In {
				p.errorf(t.Pos, "duplicate _in_ specifier")
			}
			s.In = true
		case token.CTRL:
			if s.Ctrl {
				p.errorf(t.Pos, "duplicate _ctrl_ specifier")
			}
			s.Ctrl = true
		case token.EXT:
			if s.Ext {
				p.errorf(t.Pos, "duplicate _ext_ specifier")
			}
			s.Ext = true
		case token.WIN:
			if s.Win {
				p.errorf(t.Pos, "duplicate _win_ specifier")
			}
			s.Win = true
		case token.AT:
			if s.At != "" {
				p.errorf(t.Pos, "duplicate _at_ specifier")
			}
			p.next()
			p.expect(token.LPAREN, "after _at_")
			lit := p.expect(token.STRINGLIT, "as _at_ location label")
			if lit.Lit == "" {
				p.errorf(lit.Pos, "_at_ label must be a non-empty string")
			}
			s.At = lit.Lit
			s.AtPos = lit.Pos
			p.expect(token.RPAREN, "to close _at_(...)")
			if !s.Pos.IsValid() {
				s.Pos = t.Pos
			}
			continue
		default:
			return s
		}
		if !s.Pos.IsValid() {
			s.Pos = t.Pos
		}
		p.next()
	}
}

func (p *Parser) parseTopDecl() ast.Decl {
	specs := p.parseSpecifiers()
	if p.at(token.KWSTRUCT) {
		p.errorf(p.cur().Pos, "user-defined structs are not supported in NCL; use arrays or extend the builtin window struct with _win_ fields")
		p.sync()
		return nil
	}
	// At top level, `ncl::Name` is always intended as a template type even
	// without arguments; parseType produces the helpful diagnostic.
	nclType := p.at(token.IDENT) && p.cur().Lit == "ncl" && p.peek().Kind == token.SCOPE
	if !p.atTypeStart() && !nclType {
		p.errorf(p.cur().Pos, "expected a declaration, found %s", p.cur())
		p.sync()
		return nil
	}
	baseTy := p.parseType()
	// Declarator: pointers bind to the declarator in C.
	ty := p.parsePointers(baseTy)
	name := p.expect(token.IDENT, "as declared name")

	if p.at(token.LPAREN) {
		return p.parseFuncRest(specs, ty, name)
	}
	return p.parseVarRest(specs, ty, name, "top-level declaration")
}

// parseVarRest parses array dimensions, an optional initializer, and the
// terminating semicolon of a variable declaration whose type and name have
// been consumed.
func (p *Parser) parseVarRest(specs ast.Specifiers, ty ast.TypeExpr, name token.Token, context string) *ast.VarDecl {
	ty = p.parseArraySuffix(ty)
	var init ast.Expr
	if _, ok := p.accept(token.ASSIGN); ok {
		init = p.parseInitializer()
	}
	p.expect(token.SEMI, "to end "+context)
	return &ast.VarDecl{Specs: specs, Type: ty, Name: name.Lit, NamePos: name.Pos, Init: init}
}

// parseArraySuffix parses zero or more [len] suffixes. C array dimensions
// read outside-in left to right, so `char Cache[256][128]` is an array of
// 256 arrays of 128 chars; we nest accordingly.
func (p *Parser) parseArraySuffix(elem ast.TypeExpr) ast.TypeExpr {
	var dims []ast.Expr
	for p.at(token.LBRACK) {
		p.next()
		var n ast.Expr
		if !p.at(token.RBRACK) {
			n = p.parseExpr()
		}
		p.expect(token.RBRACK, "to close array dimension")
		dims = append(dims, n)
	}
	ty := elem
	for i := len(dims) - 1; i >= 0; i-- {
		ty = &ast.ArrayType{Elem: ty, Len: dims[i]}
	}
	return ty
}

func (p *Parser) parseFuncRest(specs ast.Specifiers, ret ast.TypeExpr, name token.Token) *ast.FuncDecl {
	p.expect(token.LPAREN, "to open parameter list")
	var params []*ast.ParamDecl
	for !p.at(token.RPAREN) && !p.at(token.EOF) {
		if len(params) > 0 {
			p.expect(token.COMMA, "between parameters")
		}
		if p.at(token.KWVOID) && p.peek().Kind == token.RPAREN {
			p.next() // f(void)
			break
		}
		ext := false
		if _, ok := p.accept(token.EXT); ok {
			ext = true
		}
		if !p.atTypeStart() {
			p.errorf(p.cur().Pos, "expected parameter type, found %s", p.cur())
			p.sync()
			return &ast.FuncDecl{Specs: specs, Ret: ret, Name: name.Lit, NamePos: name.Pos, Params: params}
		}
		pty := p.parsePointers(p.parseType())
		pname := p.expect(token.IDENT, "as parameter name")
		pty = p.parseArraySuffix(pty)
		params = append(params, &ast.ParamDecl{Ext: ext, Type: pty, Name: pname.Lit, NamePos: pname.Pos})
	}
	p.expect(token.RPAREN, "to close parameter list")

	var body *ast.BlockStmt
	if p.at(token.LBRACE) {
		body = p.parseBlock()
	} else {
		p.expect(token.SEMI, "after function declaration")
	}
	return &ast.FuncDecl{Specs: specs, Ret: ret, Name: name.Lit, NamePos: name.Pos, Params: params, Body: body}
}

// ---------------------------------------------------------------------------
// Types

// atTypeStart reports whether the current token can begin a type.
func (p *Parser) atTypeStart() bool { return p.typeStartsAt(p.pos) }

// parseType parses a base type (no pointers/arrays): builtin scalars,
// multi-keyword combos (unsigned int, signed char), aliases, auto, and
// ncl:: template types.
func (p *Parser) parseType() ast.TypeExpr {
	constQual := false
	if _, ok := p.accept(token.KWCONST); ok {
		constQual = true
	}
	t := p.cur()
	switch t.Kind {
	case token.KWVOID, token.KWBOOL, token.KWAUTO:
		p.next()
		return &ast.BaseType{NamePos: t.Pos, Name: t.Lit, Const: constQual}
	case token.KWCHAR:
		return p.parseIntCombo(constQual)
	case token.KWFLOAT, token.KWDOUBLE:
		p.next()
		p.errorf(t.Pos, "%s is not supported in NCL (PISA pipelines have no floating point)", t.Lit)
		return &ast.BaseType{NamePos: t.Pos, Name: "int", Const: constQual}
	case token.KWINT:
		p.next()
		return &ast.BaseType{NamePos: t.Pos, Name: "int", Const: constQual}
	case token.KWUNSIGNED, token.KWSIGNED, token.KWSHORT, token.KWLONG:
		return p.parseIntCombo(constQual)
	case token.KWSTRUCT:
		p.errorf(t.Pos, "user-defined structs are not supported in NCL")
		p.next()
		if p.at(token.IDENT) {
			p.next()
		}
		return &ast.BaseType{NamePos: t.Pos, Name: "int", Const: constQual}
	case token.IDENT:
		if builtinAliases[t.Lit] {
			p.next()
			return &ast.BaseType{NamePos: t.Pos, Name: t.Lit, Const: constQual}
		}
		if t.Lit == "ncl" && p.peek().Kind == token.SCOPE {
			return p.parseTemplateType()
		}
	}
	p.errorf(t.Pos, "expected a type, found %s", t)
	p.next()
	return &ast.BaseType{NamePos: t.Pos, Name: "int", Const: constQual}
}

// parseIntCombo handles multi-keyword integer types: unsigned, unsigned
// int, unsigned char, signed char, short, long, long long, unsigned long
// long, etc. The canonical names are: "unsigned" (32-bit), "int" (32-bit),
// sized names for the rest.
func (p *Parser) parseIntCombo(constQual bool) ast.TypeExpr {
	start := p.cur().Pos
	unsigned, signed := false, false
	shorts, longs := 0, 0
	sawChar, sawInt := false, false
loop:
	for {
		switch p.cur().Kind {
		case token.KWUNSIGNED:
			unsigned = true
		case token.KWSIGNED:
			signed = true
		case token.KWSHORT:
			shorts++
		case token.KWLONG:
			longs++
		case token.KWCHAR:
			sawChar = true
		case token.KWINT:
			sawInt = true
		default:
			break loop
		}
		p.next()
	}
	_ = sawInt
	if unsigned && signed {
		p.errorf(start, "type cannot be both signed and unsigned")
	}
	if shorts > 1 || longs > 2 || (shorts > 0 && longs > 0) || (sawChar && (shorts > 0 || longs > 0)) {
		p.errorf(start, "invalid integer type combination")
	}
	name := ""
	switch {
	case sawChar && unsigned:
		name = "uint8_t"
	case sawChar:
		name = "int8_t" // plain/signed char: NCL chars are signed bytes
	case shorts > 0 && unsigned:
		name = "uint16_t"
	case shorts > 0:
		name = "int16_t"
	case longs > 0 && unsigned:
		name = "uint64_t"
	case longs > 0:
		name = "int64_t"
	case unsigned:
		name = "unsigned"
	default:
		name = "int"
	}
	return &ast.BaseType{NamePos: start, Name: name, Const: constQual}
}

// parseTemplateType parses ncl::Name<arg, ...>.
func (p *Parser) parseTemplateType() ast.TypeExpr {
	ns := p.expect(token.IDENT, "namespace")
	p.expect(token.SCOPE, "after ncl")
	name := p.expect(token.IDENT, "as ncl:: type name")
	tt := &ast.TemplateType{NsPos: ns.Pos, Name: name.Lit}
	if _, ok := p.accept(token.LT); !ok {
		p.errorf(name.Pos, "ncl::%s requires template arguments, e.g. ncl::Map<uint64_t, uint8_t, 256>", name.Lit)
		return tt
	}
	for !p.at(token.GT) && !p.at(token.EOF) {
		if len(tt.Args) > 0 {
			p.expect(token.COMMA, "between template arguments")
		}
		if p.atTypeStart() {
			ty := p.parsePointers(p.parseType())
			tt.Args = append(tt.Args, ast.TypeArg{Type: ty})
		} else {
			// Constant expression argument. Relational/shift operators are
			// not allowed here (they would be ambiguous with the closing >).
			e := p.parseTemplateArgExpr()
			tt.Args = append(tt.Args, ast.TypeArg{Value: e})
		}
	}
	p.expect(token.GT, "to close template arguments")
	return tt
}

// parseTemplateArgExpr parses a constant expression restricted to
// precedence levels above relational, so '>' unambiguously closes the
// template argument list.
func (p *Parser) parseTemplateArgExpr() ast.Expr {
	return p.parseBinary(p.parseUnary(), token.SHL.Precedence())
}

// parsePointers wraps ty in PointerType for each leading '*'.
func (p *Parser) parsePointers(ty ast.TypeExpr) ast.TypeExpr {
	for p.at(token.MUL) {
		star := p.next()
		ty = &ast.PointerType{StarPos: star.Pos, Elem: ty}
	}
	return ty
}

// ---------------------------------------------------------------------------
// Statements

func (p *Parser) parseBlock() *ast.BlockStmt {
	lb := p.expect(token.LBRACE, "to open block")
	blk := &ast.BlockStmt{LBrace: lb.Pos}
	for !p.at(token.RBRACE) && !p.at(token.EOF) {
		start := p.pos
		s := p.parseStmt()
		if s != nil {
			blk.Stmts = append(blk.Stmts, s)
		}
		if p.pos == start {
			p.errorf(p.cur().Pos, "unexpected token %s in block", p.cur())
			p.next()
		}
	}
	p.expect(token.RBRACE, "to close block")
	return blk
}

func (p *Parser) parseStmt() ast.Stmt {
	t := p.cur()
	switch t.Kind {
	case token.LBRACE:
		return p.parseBlock()
	case token.SEMI:
		p.next()
		return &ast.EmptyStmt{SemiPos: t.Pos}
	case token.KWIF:
		return p.parseIf()
	case token.KWFOR:
		return p.parseFor()
	case token.KWWHILE:
		return p.parseWhile()
	case token.KWDO:
		p.errorf(t.Pos, "do-while loops are not supported; use for or while with a constant trip count")
		p.sync()
		return nil
	case token.KWSWITCH:
		p.errorf(t.Pos, "switch statements are not supported; use if/else chains")
		p.sync()
		return nil
	case token.KWGOTO:
		p.errorf(t.Pos, "goto is not supported in NCL")
		p.sync()
		return nil
	case token.KWRETURN:
		p.next()
		var x ast.Expr
		if !p.at(token.SEMI) {
			x = p.parseExpr()
		}
		p.expect(token.SEMI, "after return")
		return &ast.ReturnStmt{KwPos: t.Pos, X: x}
	case token.KWBREAK:
		p.next()
		p.expect(token.SEMI, "after break")
		return &ast.BreakStmt{KwPos: t.Pos}
	case token.KWCONTINUE:
		p.next()
		p.expect(token.SEMI, "after continue")
		return &ast.ContinueStmt{KwPos: t.Pos}
	}
	if p.atTypeStart() {
		return p.parseDeclStmt()
	}
	x := p.parseExpr()
	p.expect(token.SEMI, "after expression statement")
	return &ast.ExprStmt{X: x}
}

func (p *Parser) parseDeclStmt() ast.Stmt {
	ty := p.parsePointers(p.parseType())
	name := p.expect(token.IDENT, "as local variable name")
	vd := p.parseVarRest(ast.Specifiers{}, ty, name, "declaration")
	return &ast.DeclStmt{Decl: vd}
}

func (p *Parser) parseIf() ast.Stmt {
	kw := p.expect(token.KWIF, "")
	p.expect(token.LPAREN, "after if")
	st := &ast.IfStmt{KwPos: kw.Pos}
	if p.atTypeStart() {
		// C++17-style condition declaration: if (auto *idx = Idx[key]) ...
		ty := p.parsePointers(p.parseType())
		name := p.expect(token.IDENT, "as condition variable name")
		p.expect(token.ASSIGN, "in condition declaration")
		init := p.parseExpr()
		st.CondDecl = &ast.VarDecl{Type: ty, Name: name.Lit, NamePos: name.Pos, Init: init}
	} else {
		st.Cond = p.parseExpr()
	}
	p.expect(token.RPAREN, "to close if condition")
	st.Then = p.parseStmt()
	if _, ok := p.accept(token.KWELSE); ok {
		st.Else = p.parseStmt()
	}
	return st
}

func (p *Parser) parseFor() ast.Stmt {
	kw := p.expect(token.KWFOR, "")
	p.expect(token.LPAREN, "after for")
	st := &ast.ForStmt{KwPos: kw.Pos}
	if !p.at(token.SEMI) {
		if p.atTypeStart() {
			st.Init = p.parseDeclStmt() // consumes the ';'
		} else {
			x := p.parseExpr()
			p.expect(token.SEMI, "after for initializer")
			st.Init = &ast.ExprStmt{X: x}
		}
	} else {
		p.next()
	}
	if !p.at(token.SEMI) {
		st.Cond = p.parseExpr()
	}
	p.expect(token.SEMI, "after for condition")
	if !p.at(token.RPAREN) {
		st.Post = p.parseExpr()
	}
	p.expect(token.RPAREN, "to close for clauses")
	st.Body = p.parseStmt()
	return st
}

func (p *Parser) parseWhile() ast.Stmt {
	kw := p.expect(token.KWWHILE, "")
	p.expect(token.LPAREN, "after while")
	cond := p.parseExpr()
	p.expect(token.RPAREN, "to close while condition")
	body := p.parseStmt()
	return &ast.WhileStmt{KwPos: kw.Pos, Cond: cond, Body: body}
}

// ---------------------------------------------------------------------------
// Expressions

// parseInitializer parses either a braced initializer list or an
// assignment expression.
func (p *Parser) parseInitializer() ast.Expr {
	if p.at(token.LBRACE) {
		lb := p.next()
		il := &ast.InitList{LBrace: lb.Pos}
		for !p.at(token.RBRACE) && !p.at(token.EOF) {
			if len(il.Elems) > 0 {
				if _, ok := p.accept(token.COMMA); !ok {
					break
				}
				if p.at(token.RBRACE) { // trailing comma
					break
				}
			}
			il.Elems = append(il.Elems, p.parseInitializer())
		}
		p.expect(token.RBRACE, "to close initializer list")
		return il
	}
	return p.parseAssignExpr()
}

// parseExpr parses a full expression (assignment level; no comma operator).
func (p *Parser) parseExpr() ast.Expr { return p.parseAssignExpr() }

func (p *Parser) parseAssignExpr() ast.Expr {
	lhs := p.parseTernary()
	if p.cur().Kind.IsAssignOp() {
		op := p.next()
		rhs := p.parseAssignExpr() // right associative
		return &ast.Assign{Op: op.Kind, LHS: lhs, RHS: rhs}
	}
	return lhs
}

func (p *Parser) parseTernary() ast.Expr {
	c := p.parseBinary(p.parseUnary(), 1)
	if _, ok := p.accept(token.QUESTION); ok {
		then := p.parseAssignExpr()
		p.expect(token.COLON, "in conditional expression")
		els := p.parseTernary()
		return &ast.Cond{C: c, Then: then, Else: els}
	}
	return c
}

// parseBinary is precedence climbing from minPrec upward.
func (p *Parser) parseBinary(lhs ast.Expr, minPrec int) ast.Expr {
	for {
		op := p.cur()
		prec := op.Kind.Precedence()
		if prec < minPrec || prec == 0 {
			return lhs
		}
		p.next()
		rhs := p.parseUnary()
		for {
			next := p.cur().Kind.Precedence()
			if next > prec {
				rhs = p.parseBinary(rhs, prec+1)
				continue
			}
			break
		}
		lhs = &ast.Binary{Op: op.Kind, X: lhs, Y: rhs}
	}
}

func (p *Parser) parseUnary() ast.Expr {
	t := p.cur()
	switch t.Kind {
	case token.ADD, token.SUB, token.NOT, token.TILDE, token.MUL, token.AND:
		p.next()
		x := p.parseUnary()
		return &ast.Unary{OpPos: t.Pos, Op: t.Kind, X: x}
	case token.INC, token.DEC:
		p.next()
		x := p.parseUnary()
		return &ast.Unary{OpPos: t.Pos, Op: t.Kind, X: x}
	case token.KWSIZEOF:
		p.next()
		if p.at(token.LPAREN) && p.typeStartsAt(p.pos+1) {
			p.next()
			ty := p.parsePointers(p.parseType())
			p.expect(token.RPAREN, "to close sizeof")
			return &ast.SizeofType{KwPos: t.Pos, To: ty}
		}
		x := p.parseUnary()
		return &ast.SizeofExpr{KwPos: t.Pos, X: x}
	case token.LPAREN:
		// Cast vs parenthesized expression: a '(' followed by a type is a
		// cast. The closed alias set makes this unambiguous.
		if p.typeStartsAt(p.pos + 1) {
			lp := p.next()
			ty := p.parsePointers(p.parseType())
			p.expect(token.RPAREN, "to close cast")
			x := p.parseUnary()
			return &ast.Cast{LParen: lp.Pos, To: ty, X: x}
		}
	}
	return p.parsePostfix()
}

// typeStartsAt reports whether a type begins at token index i.
func (p *Parser) typeStartsAt(i int) bool {
	t := p.peekAt(i)
	if t.Kind.IsTypeKeyword() {
		return true
	}
	if t.Kind == token.IDENT {
		if builtinAliases[t.Lit] {
			return true
		}
		// ncl::Name is a type only when Name is followed by template
		// arguments; ncl::out(...) etc. are (misused) host API calls.
		if t.Lit == "ncl" && p.peekAt(i+1).Kind == token.SCOPE &&
			p.peekAt(i+2).Kind == token.IDENT && p.peekAt(i+3).Kind == token.LT {
			return true
		}
	}
	return false
}

func (p *Parser) peekAt(i int) token.Token {
	if i < len(p.toks) {
		return p.toks[i]
	}
	return p.toks[len(p.toks)-1]
}

func (p *Parser) parsePostfix() ast.Expr {
	x := p.parsePrimary()
	for {
		t := p.cur()
		switch t.Kind {
		case token.LPAREN:
			lp := p.next()
			call := &ast.Call{Fun: x, LParen: lp.Pos}
			for !p.at(token.RPAREN) && !p.at(token.EOF) {
				if len(call.Args) > 0 {
					p.expect(token.COMMA, "between call arguments")
				}
				call.Args = append(call.Args, p.parseAssignExpr())
			}
			p.expect(token.RPAREN, "to close call")
			x = call
		case token.LBRACK:
			p.next()
			idx := p.parseExpr()
			p.expect(token.RBRACK, "to close subscript")
			x = &ast.Index{X: x, Idx: idx}
		case token.DOT:
			p.next()
			sel := p.expect(token.IDENT, "after '.'")
			x = &ast.Member{X: x, Sel: sel.Lit, SelPos: sel.Pos}
		case token.ARROW:
			p.next()
			sel := p.expect(token.IDENT, "after '->'")
			x = &ast.Member{X: x, Sel: sel.Lit, Arrow: true, SelPos: sel.Pos}
		case token.INC, token.DEC:
			p.next()
			x = &ast.Unary{OpPos: t.Pos, Op: t.Kind, X: x, Postfix: true}
		default:
			return x
		}
	}
}

func (p *Parser) parsePrimary() ast.Expr {
	t := p.cur()
	switch t.Kind {
	case token.IDENT:
		p.next()
		if p.at(token.SCOPE) {
			// ncl::name in expression position (e.g. host API misuse).
			p.next()
			sel := p.expect(token.IDENT, "after '::'")
			p.errorf(t.Pos, "%s::%s is host-side API and cannot be used inside a kernel", t.Lit, sel.Lit)
			return &ast.Ident{NamePos: t.Pos, Name: t.Lit + "::" + sel.Lit}
		}
		return &ast.Ident{NamePos: t.Pos, Name: t.Lit}
	case token.INTLIT, token.CHARLIT:
		p.next()
		v, err := parseIntText(t.Lit)
		if err != nil {
			p.errorf(t.Pos, "invalid integer literal %q", t.Lit)
		}
		return &ast.IntLit{LitPos: t.Pos, Value: v, Text: t.Lit}
	case token.KWTRUE:
		p.next()
		return &ast.BoolLit{LitPos: t.Pos, Value: true}
	case token.KWFALSE:
		p.next()
		return &ast.BoolLit{LitPos: t.Pos, Value: false}
	case token.STRINGLIT:
		p.next()
		return &ast.StringLit{LitPos: t.Pos, Value: t.Lit}
	case token.LPAREN:
		p.next()
		x := p.parseExpr()
		p.expect(token.RPAREN, "to close parenthesized expression")
		return x
	}
	p.errorf(t.Pos, "expected an expression, found %s", t)
	p.next()
	return &ast.IntLit{LitPos: t.Pos, Value: 0, Text: "0"}
}

func parseIntText(s string) (uint64, error) {
	s = strings.TrimRight(s, "uUlL")
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		return strconv.ParseUint(s[2:], 16, 64)
	}
	// Leading 0 octal is intentionally treated as decimal; octal literals
	// are a known C footgun and NCL has no use for them.
	return strconv.ParseUint(s, 10, 64)
}
