// Package types defines the NCL type system: C-like scalars with explicit
// widths, pointers, arrays, and the ncl:: switch-side data structures (Map,
// Bloom). The data plane has no floats and no dynamic allocation, so the
// type zoo is deliberately small and fully value-comparable.
package types

import (
	"fmt"
	"strings"
)

// Kind classifies types.
type Kind int

const (
	Invalid Kind = iota
	Void
	Bool
	Int     // sized integer; see Width/Signed
	Pointer // *Elem
	Array   // Elem[Len]
	Map     // ncl::Map<Key, Val, Cap>: control-plane managed exact-match table
	Bloom   // ncl::Bloom<Bits, Hashes>: switch-side bloom filter
	Sketch  // ncl::CountMin<Cols, Rows>: count-min sketch over per-row lanes
	Label   // string literal used as an AND location label (_at_, _pass)
)

// Type describes an NCL type. Types are immutable after construction;
// scalar types are interned singletons so == works for them.
type Type struct {
	Kind   Kind
	Width  int   // bits, for Int
	Signed bool  // for Int
	Elem   *Type // Pointer, Array
	Len    int   // Array length (elements)

	Key, Val *Type // Map
	Cap      int   // Map capacity (entries)

	Bits, Hashes int // Bloom (also CountMin: Bits=columns, Hashes=rows)

	// OptionalPtr marks the pointer produced by a Map lookup: it may be
	// null and supports truthiness tests and dereference, but no
	// arithmetic. (Paper Fig. 5: `if (auto *idx = Idx[key])`.)
	OptionalPtr bool
}

// Interned scalar types.
var (
	VoidType  = &Type{Kind: Void}
	BoolType  = &Type{Kind: Bool}
	I8        = &Type{Kind: Int, Width: 8, Signed: true}
	U8        = &Type{Kind: Int, Width: 8}
	I16       = &Type{Kind: Int, Width: 16, Signed: true}
	U16       = &Type{Kind: Int, Width: 16}
	I32       = &Type{Kind: Int, Width: 32, Signed: true}
	U32       = &Type{Kind: Int, Width: 32}
	I64       = &Type{Kind: Int, Width: 64, Signed: true}
	U64       = &Type{Kind: Int, Width: 64}
	LabelType = &Type{Kind: Label}
)

// IntType returns the interned integer type of the given width/signedness.
func IntType(width int, signed bool) *Type {
	switch width {
	case 8:
		if signed {
			return I8
		}
		return U8
	case 16:
		if signed {
			return I16
		}
		return U16
	case 32:
		if signed {
			return I32
		}
		return U32
	case 64:
		if signed {
			return I64
		}
		return U64
	}
	panic(fmt.Sprintf("types: no %d-bit integer type", width))
}

// ByName resolves builtin spelled type names ("int", "unsigned", "bool",
// "uint64_t", ...) to types; ok is false for unknown names (including
// "auto" and "void", which callers handle specially).
func ByName(name string) (*Type, bool) {
	switch name {
	case "bool":
		return BoolType, true
	case "int", "int32_t":
		return I32, true
	case "unsigned", "uint32_t":
		return U32, true
	case "char", "int8_t":
		return I8, true
	case "uint8_t":
		return U8, true
	case "int16_t":
		return I16, true
	case "uint16_t":
		return U16, true
	case "int64_t":
		return I64, true
	case "uint64_t", "size_t", "uintptr_t":
		return U64, true
	}
	return nil, false
}

// PointerTo returns *elem.
func PointerTo(elem *Type) *Type { return &Type{Kind: Pointer, Elem: elem} }

// OptionalPointerTo returns a Map-lookup result pointer.
func OptionalPointerTo(elem *Type) *Type {
	return &Type{Kind: Pointer, Elem: elem, OptionalPtr: true}
}

// ArrayOf returns elem[n].
func ArrayOf(elem *Type, n int) *Type { return &Type{Kind: Array, Elem: elem, Len: n} }

// MapOf returns ncl::Map<key, val, capacity>.
func MapOf(key, val *Type, capacity int) *Type {
	return &Type{Kind: Map, Key: key, Val: val, Cap: capacity}
}

// BloomOf returns ncl::Bloom<bits, hashes>.
func BloomOf(bits, hashes int) *Type {
	return &Type{Kind: Bloom, Bits: bits, Hashes: hashes}
}

// SketchOf returns ncl::CountMin<cols, rows>.
func SketchOf(cols, rows int) *Type {
	return &Type{Kind: Sketch, Bits: cols, Hashes: rows}
}

// IsInteger reports whether t is a sized integer.
func (t *Type) IsInteger() bool { return t != nil && t.Kind == Int }

// IsScalar reports whether t is an integer or bool (a PHV-representable
// value).
func (t *Type) IsScalar() bool {
	return t != nil && (t.Kind == Int || t.Kind == Bool)
}

// IsPointer reports whether t is a pointer.
func (t *Type) IsPointer() bool { return t != nil && t.Kind == Pointer }

// SizeBytes returns the byte size of a value of type t. Bool occupies one
// byte. Pointers have no wire size (they are compile-time views) and
// panic; Map/Bloom are device resources and also panic.
func (t *Type) SizeBytes() int {
	switch t.Kind {
	case Bool:
		return 1
	case Int:
		return t.Width / 8
	case Array:
		return t.Len * t.Elem.SizeBytes()
	case Void:
		return 0
	}
	panic(fmt.Sprintf("types: %s has no byte size", t))
}

// BitWidth returns the PHV bit width of a scalar.
func (t *Type) BitWidth() int {
	switch t.Kind {
	case Bool:
		return 8 // bools travel as one byte on the wire
	case Int:
		return t.Width
	}
	panic(fmt.Sprintf("types: %s has no bit width", t))
}

// Equal reports structural type equality.
func Equal(a, b *Type) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil || a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case Void, Bool, Label:
		return true
	case Int:
		return a.Width == b.Width && a.Signed == b.Signed
	case Pointer:
		return a.OptionalPtr == b.OptionalPtr && Equal(a.Elem, b.Elem)
	case Array:
		return a.Len == b.Len && Equal(a.Elem, b.Elem)
	case Map:
		return a.Cap == b.Cap && Equal(a.Key, b.Key) && Equal(a.Val, b.Val)
	case Bloom, Sketch:
		return a.Bits == b.Bits && a.Hashes == b.Hashes
	}
	return false
}

// String renders the type in NCL syntax.
func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	switch t.Kind {
	case Invalid:
		return "<invalid>"
	case Void:
		return "void"
	case Bool:
		return "bool"
	case Label:
		return "label"
	case Int:
		var b strings.Builder
		if !t.Signed {
			b.WriteByte('u')
		}
		fmt.Fprintf(&b, "int%d_t", t.Width)
		return b.String()
	case Pointer:
		if t.OptionalPtr {
			return "opt *" + t.Elem.String()
		}
		return "*" + t.Elem.String()
	case Array:
		return fmt.Sprintf("%s[%d]", t.Elem, t.Len)
	case Map:
		return fmt.Sprintf("ncl::Map<%s, %s, %d>", t.Key, t.Val, t.Cap)
	case Bloom:
		return fmt.Sprintf("ncl::Bloom<%d, %d>", t.Bits, t.Hashes)
	case Sketch:
		return fmt.Sprintf("ncl::CountMin<%d, %d>", t.Bits, t.Hashes)
	}
	return fmt.Sprintf("Kind(%d)", int(t.Kind))
}

// Common returns the type of a binary arithmetic expression over a and b
// following simplified usual arithmetic conversions: promote both to at
// least 32 bits, take the larger width, and prefer unsigned at equal
// width. ok is false when the operands are not both integers.
func Common(a, b *Type) (*Type, bool) {
	if !a.IsInteger() || !b.IsInteger() {
		return nil, false
	}
	a, b = Promote(a), Promote(b)
	if a.Signed == b.Signed {
		w := a.Width
		if b.Width > w {
			w = b.Width
		}
		return IntType(w, a.Signed), true
	}
	u, s := a, b
	if !s.Signed {
		u, s = b, a
	}
	// The unsigned operand wins at equal or greater width; otherwise the
	// wider signed type can represent every unsigned value and wins.
	if u.Width >= s.Width {
		return IntType(u.Width, false), true
	}
	return IntType(s.Width, true), true
}

// Promote returns t widened for arithmetic: C's integer promotion, where
// every type smaller than int (and bool) becomes signed 32-bit int.
func Promote(t *Type) *Type {
	if t.Kind == Bool {
		return I32
	}
	if t.IsInteger() && t.Width < 32 {
		return I32
	}
	return t
}

// AssignableTo reports whether a value of type src can be assigned to a
// location of type dst without an explicit cast. NCL permits implicit
// integer conversions (like C) and bool<->int is NOT implicit except in
// conditions.
func AssignableTo(src, dst *Type) bool {
	if Equal(src, dst) {
		return true
	}
	if src.IsInteger() && dst.IsInteger() {
		return true
	}
	return false
}

// Truthy reports whether t can be used as a condition.
func Truthy(t *Type) bool {
	return t != nil && (t.Kind == Bool || t.Kind == Int || (t.Kind == Pointer && t.OptionalPtr))
}

// TruncMask returns the mask that reduces an unsigned 64-bit value to
// width bits.
func TruncMask(width int) uint64 {
	if width >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << width) - 1
}

// SignExtend interprets the low `width` bits of v as a signed integer and
// returns its 64-bit sign extension (still as uint64 two's complement).
func SignExtend(v uint64, width int) uint64 {
	if width >= 64 {
		return v
	}
	v &= TruncMask(width)
	sign := uint64(1) << (width - 1)
	if v&sign != 0 {
		v |= ^TruncMask(width)
	}
	return v
}

// Normalize truncates v to t's width and, for signed types, sign-extends,
// producing the canonical 64-bit representation used by the interpreter
// and the PISA simulator alike. Bools normalize to 0/1.
func (t *Type) Normalize(v uint64) uint64 {
	switch t.Kind {
	case Bool:
		if v != 0 {
			return 1
		}
		return 0
	case Int:
		if t.Signed {
			return SignExtend(v, t.Width)
		}
		return v & TruncMask(t.Width)
	}
	return v
}
