package types

import (
	"testing"
	"testing/quick"
)

func TestByName(t *testing.T) {
	cases := []struct {
		name string
		want *Type
	}{
		{"int", I32}, {"unsigned", U32}, {"bool", BoolType},
		{"char", I8}, {"uint8_t", U8}, {"int8_t", I8},
		{"uint16_t", U16}, {"int16_t", I16},
		{"uint32_t", U32}, {"int32_t", I32},
		{"uint64_t", U64}, {"int64_t", I64},
		{"size_t", U64},
	}
	for _, c := range cases {
		got, ok := ByName(c.name)
		if !ok || got != c.want {
			t.Errorf("ByName(%q) = %v,%v want %v", c.name, got, ok, c.want)
		}
	}
	if _, ok := ByName("auto"); ok {
		t.Error("auto must not resolve via ByName")
	}
	if _, ok := ByName("frob"); ok {
		t.Error("unknown name must not resolve")
	}
}

func TestSizeBytes(t *testing.T) {
	cases := []struct {
		t    *Type
		want int
	}{
		{U8, 1}, {I16, 2}, {U32, 4}, {I64, 8}, {BoolType, 1},
		{ArrayOf(I32, 16), 64},
		{ArrayOf(ArrayOf(I8, 128), 256), 256 * 128},
		{VoidType, 0},
	}
	for _, c := range cases {
		if got := c.t.SizeBytes(); got != c.want {
			t.Errorf("%s.SizeBytes() = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestSizeBytesPanicsOnResources(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Map.SizeBytes must panic")
		}
	}()
	_ = MapOf(U64, U8, 256).SizeBytes()
}

func TestEqual(t *testing.T) {
	if !Equal(PointerTo(I32), PointerTo(I32)) {
		t.Error("identical pointers must be equal")
	}
	if Equal(PointerTo(I32), PointerTo(U32)) {
		t.Error("pointers to different elems must differ")
	}
	if Equal(PointerTo(I32), OptionalPointerTo(I32)) {
		t.Error("optional and plain pointers must differ")
	}
	if !Equal(MapOf(U64, U8, 256), MapOf(U64, U8, 256)) {
		t.Error("identical maps must be equal")
	}
	if Equal(MapOf(U64, U8, 256), MapOf(U64, U8, 128)) {
		t.Error("maps with different capacity must differ")
	}
	if !Equal(ArrayOf(I32, 4), ArrayOf(I32, 4)) || Equal(ArrayOf(I32, 4), ArrayOf(I32, 5)) {
		t.Error("array equality broken")
	}
	if Equal(nil, I32) || !Equal(nil, nil) {
		t.Error("nil handling broken")
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		t    *Type
		want string
	}{
		{I32, "int32_t"},
		{U64, "uint64_t"},
		{BoolType, "bool"},
		{PointerTo(I32), "*int32_t"},
		{OptionalPointerTo(U8), "opt *uint8_t"},
		{ArrayOf(I32, 8), "int32_t[8]"},
		{MapOf(U64, U8, 256), "ncl::Map<uint64_t, uint8_t, 256>"},
		{BloomOf(1024, 3), "ncl::Bloom<1024, 3>"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestCommon(t *testing.T) {
	cases := []struct {
		a, b, want *Type
	}{
		{I32, I32, I32},
		{I32, U32, U32},
		{U8, I8, I32},   // both promote to int
		{U8, U8, I32},   // ditto: C's integer promotion
		{I64, U32, I64}, // 64-bit signed absorbs 32-bit unsigned
		{U64, I32, U64},
		{I16, I32, I32},
		{U32, I64, I64},
	}
	for _, c := range cases {
		got, ok := Common(c.a, c.b)
		if !ok || got != c.want {
			t.Errorf("Common(%s,%s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	if _, ok := Common(BoolType, I32); ok {
		t.Error("Common over bool must fail")
	}
}

func TestPromote(t *testing.T) {
	// C integer promotion: everything smaller than int becomes int.
	for _, small := range []*Type{U8, I8, U16, I16, BoolType} {
		if Promote(small) != I32 {
			t.Errorf("Promote(%s) = %v, want int32_t", small, Promote(small))
		}
	}
	for _, big := range []*Type{I32, U32, I64, U64} {
		if Promote(big) != big {
			t.Errorf("Promote(%s) = %v, want unchanged", big, Promote(big))
		}
	}
}

func TestAssignableTo(t *testing.T) {
	if !AssignableTo(I32, U64) || !AssignableTo(U64, I8) {
		t.Error("integer conversions must be implicit")
	}
	if AssignableTo(BoolType, I32) {
		t.Error("bool to int must not be implicit")
	}
	if !AssignableTo(BoolType, BoolType) {
		t.Error("bool to bool must be assignable")
	}
	if AssignableTo(PointerTo(I32), PointerTo(U32)) {
		t.Error("incompatible pointers must not be assignable")
	}
}

func TestTruthy(t *testing.T) {
	if !Truthy(BoolType) || !Truthy(I32) || !Truthy(OptionalPointerTo(U8)) {
		t.Error("bool/int/optional-pointer must be truthy")
	}
	if Truthy(PointerTo(I32)) {
		t.Error("plain pointers are views, not truthy values")
	}
	if Truthy(VoidType) {
		t.Error("void is not truthy")
	}
}

func TestNormalize(t *testing.T) {
	cases := []struct {
		t    *Type
		in   uint64
		want uint64
	}{
		{U8, 0x1FF, 0xFF},
		{I8, 0xFF, ^uint64(0)}, // -1 sign-extended
		{I8, 0x7F, 0x7F},
		{I16, 0x8000, 0xFFFFFFFFFFFF8000},
		{U32, ^uint64(0), 0xFFFFFFFF},
		{I32, 0xFFFFFFFF, ^uint64(0)},
		{U64, ^uint64(0), ^uint64(0)},
		{BoolType, 42, 1},
		{BoolType, 0, 0},
	}
	for _, c := range cases {
		if got := c.t.Normalize(c.in); got != c.want {
			t.Errorf("%s.Normalize(%#x) = %#x, want %#x", c.t, c.in, got, c.want)
		}
	}
}

func TestSignExtendRoundTrip(t *testing.T) {
	// Property: normalizing twice is the same as normalizing once
	// (idempotence), for every scalar type.
	scalars := []*Type{U8, I8, U16, I16, U32, I32, U64, I64, BoolType}
	f := func(v uint64, pick uint8) bool {
		ty := scalars[int(pick)%len(scalars)]
		once := ty.Normalize(v)
		return ty.Normalize(once) == once
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTruncMask(t *testing.T) {
	if TruncMask(8) != 0xFF || TruncMask(32) != 0xFFFFFFFF || TruncMask(64) != ^uint64(0) {
		t.Error("TruncMask broken")
	}
}

func TestBitWidth(t *testing.T) {
	if U16.BitWidth() != 16 || BoolType.BitWidth() != 8 {
		t.Error("BitWidth broken")
	}
}

func TestIntTypeInterning(t *testing.T) {
	if IntType(32, false) != U32 || IntType(64, true) != I64 {
		t.Error("IntType must return interned singletons")
	}
}
