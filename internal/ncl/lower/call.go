package lower

import (
	"ncl/internal/ncl/ast"
	"ncl/internal/ncl/ir"
	"ncl/internal/ncl/sema"
	"ncl/internal/ncl/types"
)

// maxInlineDepth bounds helper-in-helper inlining.
const maxInlineDepth = 16

func (lw *lowerer) lowerCall(e *ast.Call) ir.Value {
	if m, ok := e.Fun.(*ast.Member); ok {
		return lw.lowerBloomCall(e, m)
	}
	id, ok := e.Fun.(*ast.Ident)
	if !ok {
		lw.errorf(e.Pos(), "internal: non-identifier call")
		return ir.ConstOf(types.I32, 0)
	}
	switch o := lw.info.Idents[id].(type) {
	case sema.Builtin:
		return lw.lowerBuiltinCall(e, o.Name)
	case *sema.Func:
		return lw.inlineHelper(e, o)
	}
	lw.errorf(e.Pos(), "internal: unresolved call")
	return ir.ConstOf(types.I32, 0)
}

func (lw *lowerer) lowerBloomCall(e *ast.Call, m *ast.Member) ir.Value {
	id := m.X.(*ast.Ident)
	sg := lw.info.Idents[id].(*sema.Global)
	g := lw.gmap[sg]
	key := lw.convert(lw.lowerExpr(e.Args[0]), types.U64)
	if sg.IsSketch() {
		if m.Sel == "add" {
			amt := lw.convert(lw.lowerExpr(e.Args[1]), types.U32)
			lw.emit(&ir.Instr{Op: ir.SketchAdd, Global: g, Args: []ir.Value{key, amt}})
			return nil
		}
		return lw.emitInstr(ir.SketchEst, types.U32, g, key)
	}
	if m.Sel == "add" {
		lw.emit(&ir.Instr{Op: ir.BloomAdd, Global: g, Args: []ir.Value{key}})
		return nil
	}
	return lw.emitInstr(ir.BloomTest, types.BoolType, g, key)
}

func (lw *lowerer) lowerBuiltinCall(e *ast.Call, name string) ir.Value {
	switch name {
	case sema.BMemcpy:
		lw.lowerMemcpy(e)
		return nil
	case sema.BDrop, sema.BReflect, sema.BBcast:
		lw.emit(&ir.Instr{Op: ir.Fwd, Field: name[1:]}) // strip leading '_'
		return nil
	case sema.BPass:
		label := ""
		if len(e.Args) == 1 {
			if sl, ok := e.Args[0].(*ast.StringLit); ok {
				label = sl.Value
			}
		}
		lw.emit(&ir.Instr{Op: ir.Fwd, Field: "pass", Label: label})
		return nil
	}
	lw.errorf(e.Pos(), "internal: unknown builtin call %s", name)
	return nil
}

// lowerMemcpy expands memcpy(dst, src, bytes) into element moves. The byte
// count must fold to a compile-time constant (window.len is constant after
// specialization), and both sides must have the same element width.
func (lw *lowerer) lowerMemcpy(e *ast.Call) {
	nVal := lw.lowerExpr(e.Args[2])
	n, ok := ir.IsConst(nVal)
	if !ok {
		lw.errorf(e.Args[2].Pos(), "memcpy length must be a compile-time constant (window.len and mask arithmetic fold at compile time)")
		return
	}
	dst, okD := lw.resolveRef(e.Args[0])
	src, okS := lw.resolveRef(e.Args[1])
	if !okD || !okS {
		return
	}
	if dst.elemTy.SizeBytes() != src.elemTy.SizeBytes() {
		lw.errorf(e.Pos(), "memcpy between %s and %s elements: element sizes differ (%dB vs %dB)",
			dst.elemTy, src.elemTy, dst.elemTy.SizeBytes(), src.elemTy.SizeBytes())
		return
	}
	esz := uint64(dst.elemTy.SizeBytes())
	if esz == 0 || n%esz != 0 {
		lw.errorf(e.Args[2].Pos(), "memcpy length %d is not a multiple of the element size %d", n, esz)
		return
	}
	count := int(n / esz)
	const maxMove = 512
	if count > maxMove {
		lw.errorf(e.Pos(), "memcpy of %d elements exceeds the per-kernel move limit (%d)", count, maxMove)
		return
	}
	for k := 0; k < count; k++ {
		v := lw.loadRef(e.Pos(), lw.offsetRef(src, k))
		lw.storeRef(e.Pos(), lw.offsetRef(dst, k), v)
	}
}

// ---------------------------------------------------------------------------
// Helper inlining

// inlineHelper lowers a call to a helper by splicing its body in place.
// Helper parameters are scalars passed by value; returns become edges into
// a value-carrying join.
func (lw *lowerer) inlineHelper(e *ast.Call, f *sema.Func) ir.Value {
	if lw.inlineDepth >= maxInlineDepth {
		lw.errorf(e.Pos(), "helper inlining exceeds depth %d (mutual recursion cannot map to a pipeline)", maxInlineDepth)
		return ir.ConstOf(types.I32, 0)
	}
	if f.Decl.Body == nil {
		lw.errorf(e.Pos(), "helper %s has no body", f.Name)
		return ir.ConstOf(types.I32, 0)
	}

	// Bind arguments to parameters. Helper params are scalars by value;
	// inside the body they behave as pseudo-locals tracked in lw.vars.
	for i, a := range e.Args {
		v := lw.convert(lw.lowerExpr(a), f.Params[i].Type)
		lw.vars[f.Params[i]] = varState{val: v}
	}

	savedRet := lw.retJoin
	savedInHelper := lw.inHelper
	retJoin := lw.newJoin("ret_" + f.Name)
	lw.retJoin = retJoin
	lw.inHelper = f
	lw.inlineDepth++

	lw.lowerBlock(f.Decl.Body)

	var result ir.Value
	if f.Ret.Kind == types.Void {
		lw.jumpTo(retJoin, nil)
		lw.sealJoin(retJoin)
	} else {
		if lw.cur != nil {
			lw.errorf(e.Pos(), "helper %s can finish without returning a value", f.Name)
			lw.jumpTo(retJoin, ir.ConstOf(f.Ret, 0))
		}
		result = lw.sealJoinValue(retJoin, f.Ret)
	}

	lw.inlineDepth--
	lw.inHelper = savedInHelper
	lw.retJoin = savedRet
	if result == nil {
		result = ir.ConstOf(types.I32, 0)
	}
	return result
}
