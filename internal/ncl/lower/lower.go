// Package lower translates type-checked NCL kernels into the acyclic SSA
// IR. It performs, in one pass:
//
//   - window-length specialization: window.len becomes the constant W the
//     kernel is compiled for (the paper's windows, §4.2, are fixed-shape
//     per invocation mask);
//   - full loop unrolling with compile-time trip-count evaluation — the
//     conformance rule of §5 ("loops must have provably constant trip
//     counts") is discharged constructively or rejected with a diagnostic;
//   - helper inlining (PISA has no call stack);
//   - memcpy expansion into element moves;
//   - structured SSA construction (φ at if/else joins, break/continue and
//     early-return edges merged through pending-predecessor lists);
//   - on-the-fly constant folding, so window-shape arithmetic collapses
//     at compile time.
package lower

import (
	"ncl/internal/ncl/ast"
	"ncl/internal/ncl/ir"
	"ncl/internal/ncl/sema"
	"ncl/internal/ncl/source"
	"ncl/internal/ncl/types"
)

// MaxUnroll bounds loop unrolling; beyond this a kernel cannot fit any
// realistic pipeline anyway.
const MaxUnroll = 4096

// Lower converts the checked program into an IR module with every kernel
// specialized for window length w (elements per array parameter).
func Lower(name string, info *sema.Info, w int, diags *source.DiagList) *ir.Module {
	if w < 1 {
		w = 1
	}
	lw := &lowerer{
		info:  info,
		diags: diags,
		w:     w,
		mod:   &ir.Module{Name: name},
		gmap:  map[*sema.Global]*ir.Global{},
	}
	for _, g := range info.Globals {
		if g.Const {
			continue // compile-time constants are folded away
		}
		ig := &ir.Global{Name: g.Name, Type: g.Type, Loc: g.Loc, Ctrl: g.Ctrl, Init: g.Init}
		lw.gmap[g] = ig
		lw.mod.Globals = append(lw.mod.Globals, ig)
	}
	for _, wf := range info.WinFields {
		lw.mod.WinFields = append(lw.mod.WinFields, ir.WinField{Name: wf.Name, Type: wf.Type})
	}
	for _, f := range info.Funcs {
		if f.Kind == sema.Helper {
			continue // inlined at call sites
		}
		if irf := lw.lowerKernel(f); irf != nil {
			lw.mod.Funcs = append(lw.mod.Funcs, irf)
		}
	}
	return lw.mod
}

type lowerer struct {
	info  *sema.Info
	diags *source.DiagList
	w     int
	mod   *ir.Module
	gmap  map[*sema.Global]*ir.Global

	fn     *ir.Func
	cur    *ir.Block // nil = current point unreachable
	vars   map[any]varState
	params map[*sema.Param]*ir.Param
	failed bool

	loopCtx []loopTargets
	retJoin *join

	// inHelper is the helper currently being inlined (nil in kernel body);
	// inlineDepth guards against pathological helper nesting.
	inHelper    *sema.Func
	inlineDepth int
}

// varState is the SSA state of a local: either a scalar value or a Map
// lookup (optional pointer).
type varState struct {
	val  ir.Value
	mapG *ir.Global
	key  ir.Value
}

func (v varState) isMapRef() bool { return v.mapG != nil }

type loopTargets struct {
	brk  *join
	cont *join
}

// join accumulates pending control-flow edges into a merge point.
type join struct {
	block *ir.Block
	preds []predState
}

type predState struct {
	blk  *ir.Block
	vars map[any]varState
	val  ir.Value // optional expression value carried to the join
}

func (lw *lowerer) errorf(pos source.Pos, format string, args ...any) {
	lw.diags.Errorf(pos, format, args...)
	lw.failed = true
}

func (lw *lowerer) copyVars() map[any]varState {
	m := make(map[any]varState, len(lw.vars))
	for k, v := range lw.vars {
		m[k] = v
	}
	return m
}

// ---------------------------------------------------------------------------
// Kernels

func (lw *lowerer) lowerKernel(f *sema.Func) *ir.Func {
	kind := ir.OutKernel
	if f.Kind == sema.InKernel {
		kind = ir.InKernel
	}
	irf := &ir.Func{Name: f.Name, Kind: kind, Loc: f.Loc, WindowLen: lw.w}
	lw.fn = irf
	lw.vars = map[any]varState{}
	lw.params = map[*sema.Param]*ir.Param{}
	lw.failed = false
	for _, p := range f.Params {
		ip := &ir.Param{Nm: p.Name, Ty: p.Type, Ext: p.Ext, Index: p.Index}
		irf.Params = append(irf.Params, ip)
		lw.params[p] = ip
	}
	entry := irf.NewBlock("entry")
	lw.cur = entry
	lw.retJoin = lw.newJoin("exit")

	lw.lowerBlock(f.Decl.Body)
	lw.jumpTo(lw.retJoin, nil)
	if lw.sealJoin(lw.retJoin) {
		lw.emit(&ir.Instr{Op: ir.Ret})
	}

	lw.pruneUnreachable()
	if lw.failed {
		return nil
	}
	return irf
}

// pruneUnreachable removes blocks never reached (e.g. joins with no preds,
// or code after returns).
func (lw *lowerer) pruneUnreachable() {
	reach := map[*ir.Block]bool{}
	var visit func(b *ir.Block)
	visit = func(b *ir.Block) {
		if reach[b] {
			return
		}
		reach[b] = true
		for _, s := range b.Succs() {
			visit(s)
		}
	}
	if len(lw.fn.Blocks) == 0 {
		return
	}
	visit(lw.fn.Entry())
	var keep []*ir.Block
	for _, b := range lw.fn.Blocks {
		if reach[b] {
			keep = append(keep, b)
		}
	}
	lw.fn.Blocks = keep
}

// ---------------------------------------------------------------------------
// Control-flow plumbing

func (lw *lowerer) emit(i *ir.Instr) *ir.Instr {
	if lw.cur == nil {
		// Unreachable code: evaluate into a scratch value without
		// emitting. Returning the instruction unappended keeps types sane.
		return i
	}
	return lw.cur.Append(i)
}

func (lw *lowerer) newJoin(name string) *join {
	return &join{block: lw.fn.NewBlock(name)}
}

// jumpTo ends the current block with a branch to j, recording the variable
// snapshot (and an optional carried value) for φ construction.
func (lw *lowerer) jumpTo(j *join, val ir.Value) {
	if lw.cur == nil {
		return
	}
	lw.emit(&ir.Instr{Op: ir.Br, Target: j.block})
	j.preds = append(j.preds, predState{blk: lw.cur, vars: lw.copyVars(), val: val})
	lw.cur = nil
}

// condBrTo ends the current block with a conditional branch whose false
// edge goes directly into join j (used by if-without-else and
// short-circuit operators). The carried value falseVal reaches the join on
// that edge.
func (lw *lowerer) condBrTo(cond ir.Value, t *ir.Block, j *join, falseVal ir.Value) {
	if lw.cur == nil {
		return
	}
	lw.emit(&ir.Instr{Op: ir.CondBr, Args: []ir.Value{cond}, Target: t, Else: j.block})
	t.Preds = append(t.Preds, lw.cur)
	j.preds = append(j.preds, predState{blk: lw.cur, vars: lw.copyVars(), val: falseVal})
	lw.cur = nil
}

// condBr branches to two fresh blocks.
func (lw *lowerer) condBr(cond ir.Value, t, f *ir.Block) {
	if lw.cur == nil {
		return
	}
	lw.emit(&ir.Instr{Op: ir.CondBr, Args: []ir.Value{cond}, Target: t, Else: f})
	t.Preds = append(t.Preds, lw.cur)
	f.Preds = append(f.Preds, lw.cur)
	lw.cur = nil
}

// enter makes b the current block (b must already have its preds set).
func (lw *lowerer) enter(b *ir.Block, vars map[any]varState) {
	lw.cur = b
	lw.vars = vars
}

// sealJoin finalizes j: sets predecessor order, inserts φs for locals that
// differ across edges, and makes j's block current. Returns false when the
// join is unreachable.
func (lw *lowerer) sealJoin(j *join) bool {
	if len(j.preds) == 0 {
		lw.cur = nil
		return false
	}
	b := j.block
	b.Preds = nil
	for _, p := range j.preds {
		b.Preds = append(b.Preds, p.blk)
	}
	merged := map[any]varState{}
	first := j.preds[0].vars
	for lo, v0 := range first {
		inAll := true
		same := true
		for _, p := range j.preds[1:] {
			v, ok := p.vars[lo]
			if !ok {
				inAll = false
				break
			}
			if v.val != v0.val || v.mapG != v0.mapG || v.key != v0.key {
				same = false
			}
		}
		if !inAll {
			continue
		}
		if same {
			merged[lo] = v0
			continue
		}
		if v0.isMapRef() {
			// Map references cannot merge to different lookups; scoping
			// makes this unreachable, but guard anyway.
			continue
		}
		phi := &ir.Instr{Op: ir.Phi, Ty: v0.val.Type()}
		for _, p := range j.preds {
			phi.Args = append(phi.Args, p.vars[lo].val)
		}
		// φs go to the front of the block.
		lw.prependPhi(b, phi)
		merged[lo] = varState{val: phi}
	}
	lw.cur = b
	lw.vars = merged
	return true
}

// sealJoinValue finalizes a value-carrying join (short-circuit ops,
// ternaries) and returns the merged value.
func (lw *lowerer) sealJoinValue(j *join, ty *types.Type) ir.Value {
	if !lw.sealJoin(j) {
		return ir.ConstOf(ty, 0)
	}
	v0 := j.preds[0].val
	same := true
	for _, p := range j.preds[1:] {
		if p.val != v0 {
			same = false
			break
		}
	}
	if same {
		return v0
	}
	phi := &ir.Instr{Op: ir.Phi, Ty: ty}
	for _, p := range j.preds {
		phi.Args = append(phi.Args, p.val)
	}
	lw.prependPhi(j.block, phi)
	return phi
}

// prependPhi inserts a φ before the non-φ instructions of b.
func (lw *lowerer) prependPhi(b *ir.Block, phi *ir.Instr) {
	n := 0
	for n < len(b.Instrs) && b.Instrs[n].Op == ir.Phi {
		n++
	}
	b.Instrs = append(b.Instrs, nil)
	copy(b.Instrs[n+1:], b.Instrs[n:])
	b.Instrs[n] = phi
	phi.Blk = b
	ir.AssignID(b.Func, phi)
}

// ---------------------------------------------------------------------------
// Statements

func (lw *lowerer) lowerBlock(b *ast.BlockStmt) {
	for _, s := range b.Stmts {
		lw.lowerStmt(s)
	}
}

func (lw *lowerer) lowerStmt(s ast.Stmt) {
	if lw.cur == nil {
		return // unreachable code after return/break/continue
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		lw.lowerBlock(s)
	case *ast.EmptyStmt:
	case *ast.DeclStmt:
		lw.lowerLocalDecl(s.Decl)
	case *ast.ExprStmt:
		lw.lowerExpr(s.X)
	case *ast.IfStmt:
		lw.lowerIf(s)
	case *ast.ForStmt:
		lw.lowerFor(s)
	case *ast.WhileStmt:
		lw.lowerWhile(s)
	case *ast.ReturnStmt:
		if lw.inHelper != nil && lw.inHelper.Ret.Kind != types.Void {
			if s.X == nil {
				lw.errorf(s.Pos(), "internal: missing return value")
				return
			}
			v := lw.convert(lw.lowerExpr(s.X), lw.inHelper.Ret)
			lw.jumpTo(lw.retJoin, v)
			return
		}
		lw.jumpTo(lw.retJoin, nil)
	case *ast.BreakStmt:
		if len(lw.loopCtx) == 0 {
			return
		}
		lw.jumpTo(lw.loopCtx[len(lw.loopCtx)-1].brk, nil)
	case *ast.ContinueStmt:
		if len(lw.loopCtx) == 0 {
			return
		}
		lw.jumpTo(lw.loopCtx[len(lw.loopCtx)-1].cont, nil)
	}
}

func (lw *lowerer) localOf(d *ast.VarDecl) *sema.Local {
	return lw.info.Decls[d]
}

func (lw *lowerer) lowerLocalDecl(d *ast.VarDecl) *sema.Local {
	lo := lw.localOf(d)
	if lo == nil {
		// The local is never referenced; still evaluate the initializer
		// for side effects.
		if d.Init != nil {
			lw.lowerExpr(d.Init)
		}
		return nil
	}
	if lo.Type.Kind == types.Pointer && lo.Type.OptionalPtr {
		g, key := lw.lowerMapLookup(d.Init)
		lw.vars[lo] = varState{mapG: g, key: key}
		return lo
	}
	var v ir.Value
	if d.Init != nil {
		v = lw.convert(lw.lowerExpr(d.Init), lo.Type)
	} else {
		v = ir.ConstOf(lo.Type, 0)
	}
	lw.vars[lo] = varState{val: v}
	return lo
}

// lowerMapLookup lowers a Map-subscript initializer to (global, key).
func (lw *lowerer) lowerMapLookup(e ast.Expr) (*ir.Global, ir.Value) {
	ix, ok := e.(*ast.Index)
	if !ok {
		lw.errorf(e.Pos(), "internal: optional pointer not from a Map lookup")
		return nil, ir.ConstOf(types.U64, 0)
	}
	g := lw.globalOf(ix.X)
	if g == nil || !g.IsMap() {
		lw.errorf(e.Pos(), "internal: Map lookup base is not a Map")
		return nil, ir.ConstOf(types.U64, 0)
	}
	key := lw.convert(lw.lowerExpr(ix.Idx), g.Type.Key)
	return g, key
}

func (lw *lowerer) globalOf(e ast.Expr) *ir.Global {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	sg, ok := lw.info.Idents[id].(*sema.Global)
	if !ok {
		return nil
	}
	return lw.gmap[sg]
}

func (lw *lowerer) lowerIf(s *ast.IfStmt) {
	var cond ir.Value
	if s.CondDecl != nil {
		lo := lw.lowerLocalDecl(s.CondDecl)
		if lo == nil {
			return
		}
		vs := lw.vars[lo]
		if vs.isMapRef() {
			cond = lw.emitInstr(ir.MapFound, types.BoolType, vs.mapG, vs.key)
		} else {
			cond = lw.truthy(vs.val)
		}
	} else {
		cond = lw.truthy(lw.lowerExpr(s.Cond))
	}
	if cv, ok := ir.IsConst(cond); ok {
		// Constant condition: lower only the taken branch.
		if cv != 0 {
			lw.lowerStmt(s.Then)
		} else if s.Else != nil {
			lw.lowerStmt(s.Else)
		}
		return
	}
	snapshot := lw.copyVars()
	jn := lw.newJoin("endif")
	thenB := lw.fn.NewBlock("then")
	if s.Else == nil {
		lw.condBrTo(cond, thenB, jn, nil)
		lw.enter(thenB, snapshot)
		lw.lowerStmt(s.Then)
		lw.jumpTo(jn, nil)
	} else {
		elseB := lw.fn.NewBlock("else")
		lw.condBr(cond, thenB, elseB)
		lw.enter(thenB, copyOf(snapshot))
		lw.lowerStmt(s.Then)
		lw.jumpTo(jn, nil)
		lw.enter(elseB, copyOf(snapshot))
		lw.lowerStmt(s.Else)
		lw.jumpTo(jn, nil)
	}
	lw.sealJoin(jn)
}

func copyOf(m map[any]varState) map[any]varState {
	out := make(map[any]varState, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// lowerFor unrolls the loop at compile time. The condition must fold to a
// constant before each iteration (conformance, §5).
func (lw *lowerer) lowerFor(s *ast.ForStmt) {
	if s.Init != nil {
		lw.lowerStmt(s.Init)
	}
	lw.unrollLoop(s.Pos(), s.Cond, s.Post, s.Body)
}

func (lw *lowerer) lowerWhile(s *ast.WhileStmt) {
	lw.unrollLoop(s.Pos(), s.Cond, nil, s.Body)
}

func (lw *lowerer) unrollLoop(pos source.Pos, cond ast.Expr, post ast.Expr, body ast.Stmt) {
	brk := lw.newJoin("loopexit")
	for iter := 0; ; iter++ {
		if iter > MaxUnroll {
			lw.errorf(pos, "loop exceeds the unroll limit of %d iterations", MaxUnroll)
			return
		}
		if lw.cur == nil {
			break
		}
		proceed := true
		if cond != nil {
			cv := lw.truthy(lw.lowerExpr(cond))
			c, isConst := ir.IsConst(cv)
			if !isConst {
				lw.errorf(cond.Pos(), "loop condition is not a compile-time constant; PISA pipelines require provably constant trip counts (§5). Loop bounds may use window.len, constants, and unmodified induction variables")
				return
			}
			proceed = c != 0
		} else {
			// No condition (for(;;)): only break can exit; rely on the
			// unroll limit to reject infinite loops.
			proceed = true
		}
		if !proceed {
			break
		}
		cont := lw.newJoin("iterend")
		lw.loopCtx = append(lw.loopCtx, loopTargets{brk: brk, cont: cont})
		lw.lowerStmt(body)
		lw.loopCtx = lw.loopCtx[:len(lw.loopCtx)-1]
		lw.jumpTo(cont, nil)
		if !lw.sealJoin(cont) {
			// All paths broke or returned.
			break
		}
		if post != nil {
			lw.lowerExpr(post)
		}
	}
	// Fall-through edge joins any break edges.
	lw.jumpTo(brk, nil)
	lw.sealJoin(brk)
}
