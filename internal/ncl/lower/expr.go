package lower

import (
	"ncl/internal/ncl/ast"
	"ncl/internal/ncl/ir"
	"ncl/internal/ncl/sema"
	"ncl/internal/ncl/source"
	"ncl/internal/ncl/token"
	"ncl/internal/ncl/types"
)

// ---------------------------------------------------------------------------
// Builders with on-the-fly constant folding

// emitInstr appends a state/metadata instruction and returns it as a value.
func (lw *lowerer) emitInstr(op ir.Op, ty *types.Type, g *ir.Global, args ...ir.Value) ir.Value {
	return lw.emit(&ir.Instr{Op: op, Ty: ty, Global: g, Args: args})
}

// binop emits x ⊕ y in the common type, folding constants.
func (lw *lowerer) binop(kind token.Kind, x, y ir.Value) ir.Value {
	ct, ok := types.Common(x.Type(), y.Type())
	if !ok {
		ct = types.I32
	}
	x, y = lw.convert(x, ct), lw.convert(y, ct)
	if xv, ok1 := ir.IsConst(x); ok1 {
		if yv, ok2 := ir.IsConst(y); ok2 {
			if v, folded := sema.EvalArith(kind, xv, yv, ct); folded {
				return ir.ConstOf(ct, v)
			}
		}
	}
	return lw.emit(&ir.Instr{Op: ir.BinOp, Ty: ct, Kind: kind, Args: []ir.Value{x, y}})
}

// cmp emits x ⋈ y → bool, folding constants.
func (lw *lowerer) cmp(kind token.Kind, x, y ir.Value) ir.Value {
	var ct *types.Type
	if x.Type().Kind == types.Bool && y.Type().Kind == types.Bool {
		ct = types.BoolType
	} else {
		var ok bool
		ct, ok = types.Common(promoteBool(x.Type()), promoteBool(y.Type()))
		if !ok {
			ct = types.I32
		}
	}
	x, y = lw.convert(x, ct), lw.convert(y, ct)
	if xv, ok1 := ir.IsConst(x); ok1 {
		if yv, ok2 := ir.IsConst(y); ok2 {
			return foldCmp(kind, xv, yv, ct)
		}
	}
	return lw.emit(&ir.Instr{Op: ir.Cmp, Ty: types.BoolType, Kind: kind, Args: []ir.Value{x, y}})
}

func promoteBool(t *types.Type) *types.Type {
	if t.Kind == types.Bool {
		return types.I32
	}
	return t
}

// foldCmp evaluates a comparison over canonical constants.
func foldCmp(kind token.Kind, x, y uint64, ct *types.Type) *ir.Const {
	var b bool
	signed := ct.Kind == types.Int && ct.Signed
	if signed {
		sx, sy := int64(x), int64(y)
		switch kind {
		case token.EQ:
			b = sx == sy
		case token.NE:
			b = sx != sy
		case token.LT:
			b = sx < sy
		case token.GT:
			b = sx > sy
		case token.LE:
			b = sx <= sy
		case token.GE:
			b = sx >= sy
		}
	} else {
		switch kind {
		case token.EQ:
			b = x == y
		case token.NE:
			b = x != y
		case token.LT:
			b = x < y
		case token.GT:
			b = x > y
		case token.LE:
			b = x <= y
		case token.GE:
			b = x >= y
		}
	}
	if b {
		return ir.True()
	}
	return ir.False()
}

// convert coerces v to type ty, folding constants.
func (lw *lowerer) convert(v ir.Value, ty *types.Type) ir.Value {
	if types.Equal(v.Type(), ty) {
		return v
	}
	if cv, ok := ir.IsConst(v); ok {
		return ir.ConstOf(ty, cv)
	}
	return lw.emit(&ir.Instr{Op: ir.Convert, Ty: ty, Args: []ir.Value{v}})
}

// truthy converts v to a bool test.
func (lw *lowerer) truthy(v ir.Value) ir.Value {
	if v == nil {
		return ir.False()
	}
	if v.Type().Kind == types.Bool {
		return v
	}
	return lw.cmp(token.NE, v, ir.ConstOf(v.Type(), 0))
}

// notVal negates a bool, folding constants.
func (lw *lowerer) notVal(v ir.Value) ir.Value {
	if cv, ok := ir.IsConst(v); ok {
		if cv != 0 {
			return ir.False()
		}
		return ir.True()
	}
	return lw.emit(&ir.Instr{Op: ir.Not, Ty: types.BoolType, Args: []ir.Value{v}})
}

// ---------------------------------------------------------------------------
// Expression lowering (rvalues)

func (lw *lowerer) lowerExpr(e ast.Expr) ir.Value {
	switch e := e.(type) {
	case *ast.IntLit:
		t := lw.info.TypeOf(e)
		return ir.ConstOf(t, e.Value)
	case *ast.BoolLit:
		if e.Value {
			return ir.True()
		}
		return ir.False()
	case *ast.StringLit:
		lw.errorf(e.Pos(), "internal: label in value position")
		return ir.ConstOf(types.U32, 0)
	case *ast.Ident:
		return lw.lowerIdent(e)
	case *ast.Unary:
		return lw.lowerUnary(e)
	case *ast.Binary:
		return lw.lowerBinary(e)
	case *ast.Assign:
		return lw.lowerAssign(e)
	case *ast.Cond:
		return lw.lowerTernary(e)
	case *ast.Index:
		return lw.lowerIndexLoad(e)
	case *ast.Member:
		return lw.lowerMember(e)
	case *ast.Call:
		return lw.lowerCall(e)
	case *ast.Cast:
		to := lw.info.TypeOf(e)
		return lw.convert(lw.lowerExpr(e.X), to)
	case *ast.SizeofType, *ast.SizeofExpr:
		if v, ok := lw.info.Consts[e]; ok {
			return ir.ConstOf(types.U64, v)
		}
		lw.errorf(e.Pos(), "sizeof must be a compile-time constant")
		return ir.ConstOf(types.U64, 0)
	}
	lw.errorf(e.Pos(), "internal: unsupported expression in lowering")
	return ir.ConstOf(types.I32, 0)
}

func (lw *lowerer) lowerIdent(e *ast.Ident) ir.Value {
	switch o := lw.info.Idents[e].(type) {
	case *sema.Local:
		vs := lw.vars[o]
		if vs.isMapRef() {
			lw.errorf(e.Pos(), "internal: Map reference used as a value")
			return ir.ConstOf(types.U64, 0)
		}
		if vs.val == nil {
			return ir.ConstOf(o.Type, 0)
		}
		return vs.val
	case *sema.Param:
		ip := lw.paramOf(o)
		if ip == nil {
			// Inlined helper parameter: a pseudo-local value.
			vs := lw.vars[o]
			if vs.val == nil {
				return ir.ConstOf(o.Type, 0)
			}
			return vs.val
		}
		if o.Type.Kind == types.Pointer {
			lw.errorf(e.Pos(), "internal: pointer parameter used as a value")
			return ir.ConstOf(types.U32, 0)
		}
		// Scalar window parameter: one PHV element.
		return lw.emit(&ir.Instr{Op: ir.WinLoad, Ty: o.Type, Param: ip, Args: []ir.Value{ir.ConstOf(types.U32, 0)}})
	case *sema.Global:
		if o.Const {
			return ir.ConstOf(o.Type, o.Init[0])
		}
		g := lw.gmap[o]
		if o.Type.IsScalar() {
			return lw.emitInstr(ir.RegLoad, o.Type, g, ir.ConstOf(types.U32, 0))
		}
		lw.errorf(e.Pos(), "internal: aggregate global used as a value")
		return ir.ConstOf(types.U32, 0)
	}
	lw.errorf(e.Pos(), "internal: unresolved identifier %s", e.Name)
	return ir.ConstOf(types.I32, 0)
}

// paramOf maps a sema param (possibly of an inlined helper: not present)
// to the IR param.
func (lw *lowerer) paramOf(p *sema.Param) *ir.Param {
	if ip, ok := lw.params[p]; ok {
		return ip
	}
	return nil
}

func (lw *lowerer) lowerUnary(e *ast.Unary) ir.Value {
	switch e.Op {
	case token.ADD:
		return lw.lowerExpr(e.X)
	case token.SUB:
		x := lw.lowerExpr(e.X)
		return lw.binop(token.SUB, ir.ConstOf(types.Promote(x.Type()), 0), x)
	case token.TILDE:
		x := lw.lowerExpr(e.X)
		t := types.Promote(x.Type())
		return lw.binop(token.XOR, lw.convert(x, t), ir.ConstOf(t, ^uint64(0)))
	case token.NOT:
		return lw.notVal(lw.lowerTruthyExpr(e.X))
	case token.MUL: // deref
		return lw.lowerDerefLoad(e)
	case token.AND:
		lw.errorf(e.Pos(), "internal: address-of in value position (only memcpy operands)")
		return ir.ConstOf(types.U32, 0)
	case token.INC, token.DEC:
		return lw.lowerIncDec(e)
	}
	lw.errorf(e.Pos(), "internal: unsupported unary op")
	return ir.ConstOf(types.I32, 0)
}

// lowerTruthyExpr lowers a condition expression to a bool value, handling
// Map-reference locals (truthiness = MapFound).
func (lw *lowerer) lowerTruthyExpr(e ast.Expr) ir.Value {
	if id, ok := e.(*ast.Ident); ok {
		if lo, ok := lw.info.Idents[id].(*sema.Local); ok {
			vs := lw.vars[lo]
			if vs.isMapRef() {
				return lw.emitInstr(ir.MapFound, types.BoolType, vs.mapG, vs.key)
			}
		}
	}
	return lw.truthy(lw.lowerExpr(e))
}

// lowerDerefLoad loads through a pointer: *param (window/ext element 0) or
// *maplookup (MapValue).
func (lw *lowerer) lowerDerefLoad(e *ast.Unary) ir.Value {
	if id, ok := e.X.(*ast.Ident); ok {
		switch o := lw.info.Idents[id].(type) {
		case *sema.Local:
			vs := lw.vars[o]
			if vs.isMapRef() {
				return lw.emitInstr(ir.MapValue, o.Type.Elem, vs.mapG, vs.key)
			}
		case *sema.Param:
			ip := lw.paramOf(o)
			op := ir.WinLoad
			if o.Ext {
				op = ir.ExtLoad
			}
			return lw.emit(&ir.Instr{Op: op, Ty: o.Type.Elem, Param: ip, Args: []ir.Value{ir.ConstOf(types.U32, 0)}})
		}
	}
	lw.errorf(e.Pos(), "unsupported dereference")
	return ir.ConstOf(types.I32, 0)
}

func (lw *lowerer) lowerBinary(e *ast.Binary) ir.Value {
	switch e.Op {
	case token.LAND, token.LOR:
		return lw.lowerShortCircuit(e)
	case token.EQ, token.NE, token.LT, token.GT, token.LE, token.GE:
		return lw.cmp(e.Op, lw.lowerExpr(e.X), lw.lowerExpr(e.Y))
	}
	return lw.binop(e.Op, lw.lowerExpr(e.X), lw.lowerExpr(e.Y))
}

// lowerShortCircuit lowers && and || with C's evaluation order, producing
// a diamond when the right operand must be guarded.
func (lw *lowerer) lowerShortCircuit(e *ast.Binary) ir.Value {
	lhs := lw.lowerTruthyExpr(e.X)
	if cv, ok := ir.IsConst(lhs); ok {
		if e.Op == token.LAND && cv == 0 {
			return ir.False()
		}
		if e.Op == token.LOR && cv != 0 {
			return ir.True()
		}
		return lw.lowerTruthyExpr(e.Y)
	}
	snapshot := lw.copyVars()
	jn := lw.newJoin("sc")
	rhsB := lw.fn.NewBlock("rhs")
	if e.Op == token.LAND {
		lw.condBrTo(lhs, rhsB, jn, ir.False())
	} else {
		// a || b: on a true, skip rhs carrying true. CondBr takes the true
		// edge to rhs on !a.
		lw.condBrTo(lw.notVal(lhs), rhsB, jn, ir.True())
	}
	lw.enter(rhsB, snapshot)
	rhs := lw.lowerTruthyExpr(e.Y)
	lw.jumpTo(jn, rhs)
	return lw.sealJoinValue(jn, types.BoolType)
}

func (lw *lowerer) lowerTernary(e *ast.Cond) ir.Value {
	resTy := lw.info.TypeOf(e)
	cond := lw.lowerTruthyExpr(e.C)
	if cv, ok := ir.IsConst(cond); ok {
		if cv != 0 {
			return lw.convert(lw.lowerExpr(e.Then), resTy)
		}
		return lw.convert(lw.lowerExpr(e.Else), resTy)
	}
	snapshot := lw.copyVars()
	jn := lw.newJoin("condval")
	thenB := lw.fn.NewBlock("cthen")
	elseB := lw.fn.NewBlock("celse")
	lw.condBr(cond, thenB, elseB)
	lw.enter(thenB, copyOf(snapshot))
	tv := lw.convert(lw.lowerExpr(e.Then), resTy)
	lw.jumpTo(jn, tv)
	lw.enter(elseB, copyOf(snapshot))
	ev := lw.convert(lw.lowerExpr(e.Else), resTy)
	lw.jumpTo(jn, ev)
	return lw.sealJoinValue(jn, resTy)
}

func (lw *lowerer) lowerMember(e *ast.Member) ir.Value {
	id, _ := e.X.(*ast.Ident)
	if id == nil {
		lw.errorf(e.Pos(), "internal: member base")
		return ir.ConstOf(types.U32, 0)
	}
	switch o := lw.info.Idents[id].(type) {
	case sema.Builtin:
		switch o.Name {
		case sema.BWindow:
			if e.Sel == "len" {
				// Window-length specialization: the compiled kernel serves
				// windows of exactly WindowLen elements.
				return ir.ConstOf(types.U32, uint64(lw.w))
			}
			ty := sema.WindowBuiltinFields[e.Sel]
			if ty == nil {
				for _, wf := range lw.mod.WinFields {
					if wf.Name == e.Sel {
						ty = wf.Type
					}
				}
			}
			if ty == nil {
				lw.errorf(e.Pos(), "internal: unknown window field %s", e.Sel)
				return ir.ConstOf(types.U32, 0)
			}
			return lw.emit(&ir.Instr{Op: ir.WinMeta, Ty: ty, Field: e.Sel})
		case sema.BLocation:
			return lw.emit(&ir.Instr{Op: ir.LocMeta, Ty: types.U32, Field: e.Sel})
		}
	}
	lw.errorf(e.Pos(), "internal: unsupported member access")
	return ir.ConstOf(types.U32, 0)
}

// ---------------------------------------------------------------------------
// Loads/stores through index expressions

// lowerIndexLoad loads x[i] as an rvalue.
func (lw *lowerer) lowerIndexLoad(e *ast.Index) ir.Value {
	ref, ok := lw.resolveRef(e)
	if !ok {
		return ir.ConstOf(types.I32, 0)
	}
	return lw.loadRef(e.Pos(), ref)
}

// memRef is a resolved reference to one element (or, for memcpy, the base
// of a run of elements) of window data, host memory, or switch state.
type memRef struct {
	param  *ir.Param  // window or ext data
	global *ir.Global // switch register state
	base   ir.Value   // element index
	elemTy *types.Type
}

// resolveRef resolves an lvalue-ish expression into a memRef.
func (lw *lowerer) resolveRef(e ast.Expr) (memRef, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		switch o := lw.info.Idents[e].(type) {
		case *sema.Param:
			ip := lw.paramOf(o)
			return memRef{param: ip, base: ir.ConstOf(types.U32, 0), elemTy: ip.ElemType()}, true
		case *sema.Global:
			g := lw.gmap[o]
			if g == nil {
				break
			}
			return memRef{global: g, base: ir.ConstOf(types.U32, 0), elemTy: g.ElemType()}, true
		}
	case *ast.Unary:
		if e.Op == token.MUL {
			return lw.resolveRef(derefTarget(e))
		}
		if e.Op == token.AND {
			return lw.resolveRef(e.X)
		}
	case *ast.Index:
		return lw.resolveIndexRef(e)
	}
	lw.errorf(e.Pos(), "unsupported memory reference")
	return memRef{}, false
}

// derefTarget unwraps *p to p for resolution (deref = element 0).
func derefTarget(e *ast.Unary) ast.Expr { return e.X }

// resolveIndexRef resolves (possibly nested) indexing into a memRef with a
// computed linear element index.
func (lw *lowerer) resolveIndexRef(e *ast.Index) (memRef, bool) {
	// Collect the index chain down to the base identifier.
	var chain []ast.Expr
	cur := ast.Expr(e)
	for {
		ix, ok := cur.(*ast.Index)
		if !ok {
			break
		}
		chain = append([]ast.Expr{ix.Idx}, chain...)
		cur = ix.X
	}
	id, ok := cur.(*ast.Ident)
	if !ok {
		lw.errorf(e.Pos(), "unsupported indexed expression")
		return memRef{}, false
	}
	switch o := lw.info.Idents[id].(type) {
	case *sema.Param:
		ip := lw.paramOf(o)
		if len(chain) != 1 {
			lw.errorf(e.Pos(), "window data has one dimension")
			return memRef{}, false
		}
		idx := lw.convert(lw.lowerExpr(chain[0]), types.U32)
		if !ip.Ext {
			iv, isConst := ir.IsConst(idx)
			if !isConst {
				lw.errorf(e.Pos(), "window data index must be a compile-time constant: it selects a packet header field. Use a loop over window.len so the compiler can unroll it")
				return memRef{}, false
			}
			if int(iv) >= ip.Elems(lw.w) {
				lw.errorf(e.Pos(), "window element %d is out of range: %s carries %d element(s) per window at the compiled window length %d",
					iv, ip.Nm, ip.Elems(lw.w), lw.w)
				return memRef{}, false
			}
		}
		return memRef{param: ip, base: idx, elemTy: ip.ElemType()}, true
	case *sema.Global:
		g := lw.gmap[o]
		if g == nil {
			lw.errorf(e.Pos(), "internal: missing global")
			return memRef{}, false
		}
		if g.IsMap() || g.IsBloom() {
			lw.errorf(e.Pos(), "internal: resource indexing must go through lookups")
			return memRef{}, false
		}
		// Flatten multi-dimensional indices into a linear element index.
		ty := g.Type
		lin := ir.Value(ir.ConstOf(types.U32, 0))
		for _, ixExpr := range chain {
			if ty.Kind != types.Array {
				lw.errorf(e.Pos(), "too many indices for %s", g.Name)
				return memRef{}, false
			}
			idx := lw.convert(lw.lowerExpr(ixExpr), types.U32)
			lin = lw.binop(token.MUL, lin, ir.ConstOf(types.U32, uint64(ty.Len)))
			lin = lw.binop(token.ADD, lin, idx)
			ty = ty.Elem
		}
		// Remaining array dims mean this ref is a row base (memcpy only);
		// scale the row index down to scalar elements.
		elemTy := ty
		for elemTy.Kind == types.Array {
			lin = lw.binop(token.MUL, lin, ir.ConstOf(types.U32, uint64(elemTy.Len)))
			elemTy = elemTy.Elem
		}
		return memRef{global: g, base: lw.convert(lin, types.U32), elemTy: elemTy}, true
	case *sema.Local:
		// Map-lookup locals cannot be indexed (sema rejects).
		lw.errorf(e.Pos(), "internal: indexing a local")
		return memRef{}, false
	}
	lw.errorf(e.Pos(), "unsupported indexed expression")
	return memRef{}, false
}

// loadRef emits the load for a resolved element reference.
func (lw *lowerer) loadRef(pos source.Pos, r memRef) ir.Value {
	switch {
	case r.param != nil && !r.param.Ext:
		return lw.emit(&ir.Instr{Op: ir.WinLoad, Ty: r.elemTy, Param: r.param, Args: []ir.Value{r.base}})
	case r.param != nil:
		return lw.emit(&ir.Instr{Op: ir.ExtLoad, Ty: r.elemTy, Param: r.param, Args: []ir.Value{r.base}})
	case r.global != nil:
		return lw.emitInstr(ir.RegLoad, r.elemTy, r.global, r.base)
	}
	lw.errorf(pos, "internal: empty memory reference")
	return ir.ConstOf(types.I32, 0)
}

// storeRef emits the store for a resolved element reference.
func (lw *lowerer) storeRef(pos source.Pos, r memRef, v ir.Value) {
	v = lw.convert(v, r.elemTy)
	switch {
	case r.param != nil && !r.param.Ext:
		lw.emit(&ir.Instr{Op: ir.WinStore, Param: r.param, Args: []ir.Value{r.base, v}})
	case r.param != nil:
		lw.emit(&ir.Instr{Op: ir.ExtStore, Param: r.param, Args: []ir.Value{r.base, v}})
	case r.global != nil:
		lw.emit(&ir.Instr{Op: ir.RegStore, Global: r.global, Args: []ir.Value{r.base, v}})
	default:
		lw.errorf(pos, "internal: empty memory reference")
	}
}

// offsetRef returns r displaced by k elements (for memcpy expansion).
func (lw *lowerer) offsetRef(r memRef, k int) memRef {
	if k == 0 {
		return r
	}
	out := r
	out.base = lw.binop(token.ADD, r.base, ir.ConstOf(types.U32, uint64(k)))
	return out
}

// ---------------------------------------------------------------------------
// Assignment and side-effecting expressions

func (lw *lowerer) lowerAssign(e *ast.Assign) ir.Value {
	lhsTy := lw.info.TypeOf(e.LHS)
	var rhs ir.Value
	if e.Op == token.ASSIGN {
		rhs = lw.convert(lw.lowerExpr(e.RHS), lhsTy)
		lw.storeLValue(e.LHS, rhs)
		return rhs
	}
	// Compound assignment: load, op, store.
	old := lw.lowerExpr(e.LHS)
	op := compoundOp(e.Op)
	res := lw.convert(lw.binop(op, old, lw.lowerExpr(e.RHS)), lhsTy)
	lw.storeLValue(e.LHS, res)
	return res
}

func compoundOp(k token.Kind) token.Kind {
	switch k {
	case token.ADDASSIGN:
		return token.ADD
	case token.SUBASSIGN:
		return token.SUB
	case token.MULASSIGN:
		return token.MUL
	case token.DIVASSIGN:
		return token.DIV
	case token.MODASSIGN:
		return token.MOD
	case token.ANDASSIGN:
		return token.AND
	case token.ORASSIGN:
		return token.OR
	case token.XORASSIGN:
		return token.XOR
	case token.SHLASSIGN:
		return token.SHL
	case token.SHRASSIGN:
		return token.SHR
	}
	return token.ADD
}

// storeLValue writes v into the lvalue expression.
func (lw *lowerer) storeLValue(e ast.Expr, v ir.Value) {
	switch e := e.(type) {
	case *ast.Ident:
		switch o := lw.info.Idents[e].(type) {
		case *sema.Local:
			lw.vars[o] = varState{val: lw.convert(v, o.Type)}
			return
		case *sema.Param:
			ip := lw.paramOf(o)
			if ip == nil {
				// Inlined helper parameter: by-value pseudo-local.
				lw.vars[o] = varState{val: lw.convert(v, o.Type)}
				return
			}
			// Scalar window parameter: write PHV element 0.
			op := ir.WinStore
			if o.Ext {
				op = ir.ExtStore
			}
			lw.emit(&ir.Instr{Op: op, Param: ip, Args: []ir.Value{ir.ConstOf(types.U32, 0), lw.convert(v, ip.ElemType())}})
			return
		case *sema.Global:
			// Scalar switch register.
			g := lw.gmap[o]
			lw.emit(&ir.Instr{Op: ir.RegStore, Global: g, Args: []ir.Value{ir.ConstOf(types.U32, 0), lw.convert(v, g.ElemType())}})
			return
		}
	case *ast.Index:
		if ref, ok := lw.resolveRef(e); ok {
			lw.storeRef(e.Pos(), ref, v)
		}
		return
	case *ast.Unary:
		if e.Op == token.MUL {
			if ref, ok := lw.resolveRef(e.X); ok {
				lw.storeRef(e.Pos(), ref, v)
			}
			return
		}
	}
	lw.errorf(e.Pos(), "internal: unsupported lvalue")
}

func (lw *lowerer) lowerIncDec(e *ast.Unary) ir.Value {
	op := token.ADD
	if e.Op == token.DEC {
		op = token.SUB
	}
	ty := lw.info.TypeOf(e.X)
	old := lw.lowerExpr(e.X)
	res := lw.convert(lw.binop(op, old, ir.ConstOf(types.Promote(ty), 1)), ty)
	lw.storeLValue(e.X, res)
	if e.Postfix {
		return old
	}
	return res
}
