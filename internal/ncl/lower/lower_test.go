package lower

import (
	"strings"
	"testing"

	"ncl/internal/ncl/ir"
	"ncl/internal/ncl/parser"
	"ncl/internal/ncl/sema"
	"ncl/internal/ncl/source"
)

// lowerSrc runs the full frontend + lowering for window length w.
func lowerSrc(t *testing.T, src string, w int) (*ir.Module, *source.DiagList) {
	t.Helper()
	var diags source.DiagList
	f := parser.ParseSource("test.ncl", src, &diags)
	if diags.HasErrors() {
		t.Fatalf("parse errors: %v", diags.Err())
	}
	info := sema.Check(f, &diags)
	if diags.HasErrors() {
		t.Fatalf("sema errors: %v", diags.Err())
	}
	m := Lower("test", info, w, &diags)
	return m, &diags
}

func lowerOK(t *testing.T, src string, w int) *ir.Module {
	t.Helper()
	m, diags := lowerSrc(t, src, w)
	if diags.HasErrors() {
		t.Fatalf("lowering errors:\n%v", diags.Err())
	}
	if err := ir.Verify(m); err != nil {
		t.Fatalf("IR verification failed: %v\n%s", err, m)
	}
	return m
}

func lowerErr(t *testing.T, src string, w int, fragment string) {
	t.Helper()
	_, diags := lowerSrc(t, src, w)
	if !diags.HasErrors() {
		t.Fatalf("expected lowering error containing %q", fragment)
	}
	if !strings.Contains(diags.Err().Error(), fragment) {
		t.Errorf("errors do not mention %q:\n%v", fragment, diags.Err())
	}
}

func countOps(f *ir.Func, op ir.Op) int {
	n := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == op {
				n++
			}
		}
	}
	return n
}

// --- basics ---

func TestLowerStraightLine(t *testing.T) {
	m := lowerOK(t, `
_net_ int acc[8] = {0};
_net_ _out_ void k(int *d) { acc[0] += d[0]; }
`, 4)
	f := m.FuncByName("k")
	if f == nil {
		t.Fatal("kernel k missing")
	}
	if countOps(f, ir.RegLoad) != 1 || countOps(f, ir.RegStore) != 1 || countOps(f, ir.WinLoad) != 1 {
		t.Errorf("unexpected op mix:\n%s", f)
	}
}

func TestLoopUnrolling(t *testing.T) {
	m := lowerOK(t, `
_net_ int acc[64] = {0};
_net_ _out_ void k(int *d) {
    for (unsigned i = 0; i < window.len; ++i)
        acc[i] += d[i];
}
`, 8)
	f := m.FuncByName("k")
	// 8 iterations: 8 window loads, 8 reg loads, 8 reg stores.
	if countOps(f, ir.WinLoad) != 8 || countOps(f, ir.RegStore) != 8 {
		t.Errorf("unroll by W=8 expected 8 loads/stores:\n%s", f)
	}
	// No branches: the loop disappears entirely.
	if countOps(f, ir.CondBr) != 0 {
		t.Errorf("unrolled loop should leave no branches:\n%s", f)
	}
}

func TestLoopUnrollDifferentW(t *testing.T) {
	for _, w := range []int{1, 2, 16, 64} {
		m := lowerOK(t, `
_net_ int acc[64] = {0};
_net_ _out_ void k(int *d) { for (unsigned i = 0; i < window.len; ++i) acc[i] += d[i]; }
`, w)
		f := m.FuncByName("k")
		if got := countOps(f, ir.WinLoad); got != w {
			t.Errorf("W=%d: %d window loads", w, got)
		}
	}
}

func TestRuntimeLoopBoundRejected(t *testing.T) {
	lowerErr(t, `
_net_ int acc[64] = {0};
_net_ _out_ void k(int *d) {
    for (unsigned i = 0; i < acc[0]; ++i) d[0] += 1;
}
`, 4, "provably constant trip counts")
}

func TestModifiedInductionVarRejected(t *testing.T) {
	lowerErr(t, `
_net_ int acc[64] = {0};
_net_ _out_ void k(int *d) {
    for (unsigned i = 0; i < 4; ++i) { if (d[0]) i += d[1]; }
}
`, 4, "provably constant")
}

func TestUnrollLimit(t *testing.T) {
	lowerErr(t, `
_net_ _out_ void k(int *d) { for (unsigned i = 0; i < 100000; ++i) d[0] += 1; }
`, 4, "unroll limit")
}

func TestInfiniteLoopRejected(t *testing.T) {
	lowerErr(t, `
_net_ _out_ void k(int *d) { while (true) d[0] += 1; }
`, 4, "unroll limit")
}

func TestBreakInUnrolledLoop(t *testing.T) {
	m := lowerOK(t, `
_net_ _out_ void k(int *d) {
    for (unsigned i = 0; i < window.len; ++i) {
        if (d[i] == 0) break;
        d[i] = 1;
    }
}
`, 4)
	f := m.FuncByName("k")
	// Runtime breaks leave conditional control flow behind.
	if countOps(f, ir.CondBr) != 4 {
		t.Errorf("expected 4 runtime break tests:\n%s", f)
	}
}

func TestContinueInUnrolledLoop(t *testing.T) {
	lowerOK(t, `
_net_ _out_ void k(int *d) {
    for (unsigned i = 0; i < window.len; ++i) {
        if (d[i] == 0) continue;
        d[i] = 2;
    }
}
`, 4)
}

func TestCompileTimeBreak(t *testing.T) {
	m := lowerOK(t, `
_net_ _out_ void k(int *d) {
    for (unsigned i = 0; i < 100; ++i) {
        if (i == 2) break;
        d[0] += 1;
    }
}
`, 4)
	f := m.FuncByName("k")
	// i==2 folds; iterations 0,1 run, 2 breaks: 2 adds, no branches.
	if countOps(f, ir.WinStore) != 2 || countOps(f, ir.CondBr) != 0 {
		t.Errorf("compile-time break mis-lowered:\n%s", f)
	}
}

// --- control flow and φ ---

func TestIfElsePhi(t *testing.T) {
	m := lowerOK(t, `
_net_ _out_ void k(int *d) {
    int x = 0;
    if (d[0] > 0) { x = 1; } else { x = 2; }
    d[1] = x;
}
`, 4)
	f := m.FuncByName("k")
	if countOps(f, ir.Phi) != 1 {
		t.Errorf("want exactly one φ:\n%s", f)
	}
}

func TestIfWithoutElsePhi(t *testing.T) {
	m := lowerOK(t, `
_net_ _out_ void k(int *d) {
    int x = 5;
    if (d[0] > 0) x = 7;
    d[1] = x;
}
`, 4)
	f := m.FuncByName("k")
	if countOps(f, ir.Phi) != 1 {
		t.Errorf("want one φ merging 5/7:\n%s", f)
	}
}

func TestNestedIfPhis(t *testing.T) {
	lowerOK(t, `
_net_ _out_ void k(int *d) {
    int x = 0;
    if (d[0]) {
        if (d[1]) x = 1; else x = 2;
    } else {
        x = 3;
    }
    d[2] = x;
}
`, 4)
}

func TestConstantConditionFolds(t *testing.T) {
	m := lowerOK(t, `
_net_ _out_ void k(int *d) {
    if (window.len == 4) d[0] = 1; else d[0] = 2;
}
`, 4)
	f := m.FuncByName("k")
	if countOps(f, ir.CondBr) != 0 {
		t.Errorf("window.len comparison must fold:\n%s", f)
	}
	// Only the taken branch lowers.
	stores := countOps(f, ir.WinStore)
	if stores != 1 {
		t.Errorf("want 1 store, got %d", stores)
	}
}

func TestShortCircuitAnd(t *testing.T) {
	m := lowerOK(t, `
_net_ unsigned c[4] = {0};
_net_ _out_ void k(int *d, bool u) {
    if (u && ++c[0] > 2) d[0] = 1;
}
`, 4)
	f := m.FuncByName("k")
	// The increment must be guarded: RegStore happens on the rhs path only.
	if countOps(f, ir.CondBr) < 2 {
		t.Errorf("short-circuit must produce guarded evaluation:\n%s", f)
	}
}

func TestTernaryLowering(t *testing.T) {
	lowerOK(t, `
_net_ _out_ void k(int *d, bool u) { d[0] = u ? d[1] : d[2]; }
`, 4)
}

func TestEarlyReturn(t *testing.T) {
	lowerOK(t, `
_net_ _out_ void k(int *d) {
    if (d[0] == 0) { _drop(); return; }
    d[0] = 1;
}
`, 4)
}

// --- window data ---

func TestScalarParams(t *testing.T) {
	m := lowerOK(t, `
_net_ _out_ void k(uint64_t key, bool update) {
    if (update) key = 0;
}
`, 4)
	f := m.FuncByName("k")
	if countOps(f, ir.WinLoad) != 1 || countOps(f, ir.WinStore) != 1 {
		t.Errorf("scalar params are single window elements:\n%s", f)
	}
}

func TestWindowIndexOutOfRangeRejected(t *testing.T) {
	lowerErr(t, `
_net_ _out_ void k(int *d) { d[5] = 1; }
`, 4, "out of range")
	lowerErr(t, `
_net_ _out_ void k(uint64_t key) { }
_net_ _out_ void k2(int *a, uint8_t *b) { b[1] = 0; }
`, 1, "out of range")
}

func TestRuntimeWindowIndexRejected(t *testing.T) {
	lowerErr(t, `
_net_ int acc[8] = {0};
_net_ _out_ void k(int *d) { d[acc[0]] = 1; }
`, 4, "compile-time constant")
}

func TestWindowLenSpecialized(t *testing.T) {
	m := lowerOK(t, `
_net_ int acc[64] = {0};
_net_ _out_ void k(int *d) { acc[window.seq * window.len] += 1; }
`, 16)
	f := m.FuncByName("k")
	// window.len folds to 16; only window.seq reads remain (CSE of the
	// duplicate read happens in the optimizer, not here).
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.WinMeta && in.Field == "len" {
				t.Errorf("window.len must be specialized away:\n%s", f)
			}
		}
	}
	if countOps(f, ir.WinMeta) == 0 {
		t.Errorf("window.seq must remain a runtime read:\n%s", f)
	}
}

// --- memcpy ---

func TestMemcpyExpansion(t *testing.T) {
	m := lowerOK(t, `
_net_ int accum[64] = {0};
_net_ _out_ void k(int *data) {
    memcpy(data, &accum[window.seq * window.len], window.len * 4);
}
`, 8)
	f := m.FuncByName("k")
	if countOps(f, ir.RegLoad) != 8 || countOps(f, ir.WinStore) != 8 {
		t.Errorf("memcpy of 8 ints must expand to 8 moves:\n%s", f)
	}
}

func TestMemcpy2DRow(t *testing.T) {
	m := lowerOK(t, `
_net_ ncl::Map<uint64_t, uint8_t, 16> Idx;
_net_ char Cache[16][32] = {{0}};
_net_ _out_ void k(uint64_t key, char *val) {
    auto *i = Idx[key];
    memcpy(val, Cache[*i], 32);
}
`, 32)
	f := m.FuncByName("k")
	if countOps(f, ir.RegLoad) != 32 || countOps(f, ir.WinStore) != 32 {
		t.Errorf("row copy must expand to 32 byte moves:\n%s", f)
	}
}

func TestMemcpyElemSizeMismatch(t *testing.T) {
	lowerErr(t, `
_net_ int accum[8] = {0};
_net_ _out_ void k(char *val) { memcpy(val, &accum[0], 8); }
`, 8, "element sizes differ")
}

func TestMemcpyNonConstLength(t *testing.T) {
	lowerErr(t, `
_net_ int accum[8] = {0};
_net_ _out_ void k(int *d) { memcpy(d, &accum[0], (unsigned)d[0]); }
`, 4, "compile-time constant")
}

// --- maps, blooms, helpers ---

func TestMapLoweringSharedLookup(t *testing.T) {
	m := lowerOK(t, `
_net_ ncl::Map<uint64_t, uint8_t, 16> M;
_net_ bool Valid[16] = {false};
_net_ _out_ void k(uint64_t key) {
    if (auto *idx = M[key]) { Valid[*idx] = false; }
}
`, 4)
	f := m.FuncByName("k")
	if countOps(f, ir.MapFound) != 1 || countOps(f, ir.MapValue) != 1 {
		t.Errorf("map lookup ops wrong:\n%s", f)
	}
}

func TestBloomLowering(t *testing.T) {
	m := lowerOK(t, `
_net_ ncl::Bloom<256, 3> seen;
_net_ _out_ void k(uint64_t key) {
    if (seen.test(key)) _drop();
    seen.add(key);
}
`, 4)
	f := m.FuncByName("k")
	if countOps(f, ir.BloomTest) != 1 || countOps(f, ir.BloomAdd) != 1 {
		t.Errorf("bloom ops wrong:\n%s", f)
	}
}

func TestHelperInlining(t *testing.T) {
	m := lowerOK(t, `
int clamp(int v, int hi) { if (v > hi) return hi; return v; }
_net_ _out_ void k(int *d) { d[0] = clamp(d[0], 100); }
`, 4)
	f := m.FuncByName("k")
	if m.FuncByName("clamp") != nil {
		t.Error("helpers must not appear as IR functions")
	}
	if countOps(f, ir.Phi) != 1 {
		t.Errorf("inlined early return needs a φ:\n%s", f)
	}
}

func TestHelperInliningNested(t *testing.T) {
	lowerOK(t, `
int a(int v) { return v + 1; }
int b(int v) { return a(v) * 2; }
_net_ _out_ void k(int *d) { d[0] = b(d[0]); }
`, 4)
}

// --- forwarding ---

func TestForwardingOps(t *testing.T) {
	m := lowerOK(t, `
_net_ _out_ void k(int *d) {
    if (d[0] == 0) _drop();
    else if (d[0] == 1) _pass("server");
    else _bcast();
}
`, 4)
	f := m.FuncByName("k")
	if countOps(f, ir.Fwd) != 3 {
		t.Errorf("want 3 fwd ops:\n%s", f)
	}
	// Check the pass label survived.
	found := false
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.Fwd && in.Field == "pass" && in.Label == "server" {
				found = true
			}
		}
	}
	if !found {
		t.Error("pass label lost")
	}
}

// --- paper kernels end-to-end through lowering ---

const fig4Src = `
#define DATA_LEN 64
_net_ _at_("s1") int accum[DATA_LEN] = {0};
_net_ _at_("s1") unsigned count[DATA_LEN/8] = {0};
_net_ _at_("s1") _ctrl_ unsigned nworkers;

_net_ _out_ void allreduce(int *data) {
    unsigned base = window.seq * window.len;
    for (unsigned i = 0; i < window.len; ++i)
        accum[base + i] += data[i];
    if (++count[window.seq] == nworkers) {
        memcpy(data, &accum[base], window.len * 4);
        count[window.seq] = 0; _bcast();
    } else { _drop(); }
}

_net_ _in_ void result(int *data, _ext_ int *hdata, _ext_ bool *done) {
    for (unsigned i = 0; i < window.len; ++i)
        hdata[window.seq * window.len + i] = data[i];
    *done = true;
}
`

func TestPaperFig4Lowers(t *testing.T) {
	m := lowerOK(t, fig4Src, 8)
	ar := m.FuncByName("allreduce")
	if ar == nil {
		t.Fatal("allreduce missing")
	}
	if ar.Kind != ir.OutKernel || ar.Loc != "" {
		// Fig. 4's kernel is location-less (SPMD); only its state is _at_("s1").
		t.Errorf("allreduce metadata wrong: kind=%v loc=%q", ar.Kind, ar.Loc)
	}
	// 8 accumulations + count RMW + 8 result copies.
	if countOps(ar, ir.RegStore) < 9 {
		t.Errorf("accumulation stores missing:\n%s", ar)
	}
	res := m.FuncByName("result")
	if res == nil || res.Kind != ir.InKernel {
		t.Fatal("result kernel wrong")
	}
	if countOps(res, ir.ExtStore) != 9 { // 8 hdata + 1 done
		t.Errorf("result ext stores = %d, want 9:\n%s", countOps(res, ir.ExtStore), res)
	}
}

const fig5Src = `
#define SERVER 1
_net_ _at_("s1") ncl::Map<uint64_t, uint8_t, 256> Idx;
_net_ _at_("s1") char Cache[256][128] = {{0}};
_net_ _at_("s1") bool Valid[256] = {false};

_net_ _out_ void query(uint64_t key, char *val, bool update) {
    if (window.from != SERVER && update) {
        if (auto *idx = Idx[key]) Valid[*idx] = false;
    } else if (window.from != SERVER) {
        if (auto *idx = Idx[key]) {
            if (Valid[*idx]) {
                memcpy(val, Cache[*idx], 128); _reflect(); } }
    } else if (update) {
        auto *idx = Idx[key]; memcpy(Cache[*idx], val, 128);
        Valid[*idx] = true; _drop();
    } else { }
}
`

func TestPaperFig5Lowers(t *testing.T) {
	m := lowerOK(t, fig5Src, 128)
	q := m.FuncByName("query")
	if q == nil {
		t.Fatal("query missing")
	}
	// Value copies: 128 bytes in each direction on the two memcpy paths.
	if countOps(q, ir.RegLoad) < 128 {
		t.Errorf("cache read path missing moves:\n%d regloads", countOps(q, ir.RegLoad))
	}
	if countOps(q, ir.RegStore) < 128 {
		t.Errorf("cache write path missing moves: %d regstores", countOps(q, ir.RegStore))
	}
	if countOps(q, ir.MapFound) < 2 {
		t.Errorf("map lookups missing")
	}
}

func TestModuleStringRendering(t *testing.T) {
	m := lowerOK(t, `
_net_ int acc[4] = {0};
_net_ _out_ void k(int *d) { acc[0] += d[0]; }
`, 4)
	s := m.String()
	for _, want := range []string{"module test", "global acc", "func out k", "regload", "regstore", "ret"} {
		if !strings.Contains(s, want) {
			t.Errorf("module dump missing %q:\n%s", want, s)
		}
	}
}
