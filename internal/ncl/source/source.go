// Package source provides source-file handling, positions, and diagnostics
// for the NCL toolchain. Every phase of the compiler (lexer, parser, sema,
// lowering, conformance) reports problems as *Diagnostic values anchored to
// a Pos, so error messages always carry file:line:col context.
package source

import (
	"fmt"
	"sort"
	"strings"
)

// Pos identifies a location in an NCL source file. The zero Pos is "no
// position" and formats as "-".
type Pos struct {
	File string // file name as given to the compiler
	Line int    // 1-based line
	Col  int    // 1-based column (byte offset within the line)
}

// IsValid reports whether p carries a real location.
func (p Pos) IsValid() bool { return p.Line > 0 }

// String formats the position as file:line:col.
func (p Pos) String() string {
	if !p.IsValid() {
		return "-"
	}
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Col)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// Before reports whether p is strictly earlier than q, assuming both refer
// to the same file. Positions from different files compare by file name so
// sorting stays deterministic.
func (p Pos) Before(q Pos) bool {
	if p.File != q.File {
		return p.File < q.File
	}
	if p.Line != q.Line {
		return p.Line < q.Line
	}
	return p.Col < q.Col
}

// File is an in-memory NCL source file.
type File struct {
	Name    string
	Content []byte
}

// NewFile wraps name/content as a File.
func NewFile(name string, content []byte) *File {
	return &File{Name: name, Content: content}
}

// Line returns the text (without trailing newline) of the 1-based line n,
// and false if n is out of range. Used for caret diagnostics.
func (f *File) Line(n int) (string, bool) {
	if n < 1 {
		return "", false
	}
	start := 0
	line := 1
	for i := 0; i <= len(f.Content); i++ {
		if i == len(f.Content) || f.Content[i] == '\n' {
			if line == n {
				return string(f.Content[start:i]), true
			}
			line++
			start = i + 1
		}
	}
	return "", false
}

// Severity classifies a diagnostic.
type Severity int

const (
	// Error diagnostics abort compilation at the end of the current phase.
	Error Severity = iota
	// Warning diagnostics are reported but never abort compilation.
	Warning
	// Note diagnostics attach extra context to a preceding error.
	Note
)

func (s Severity) String() string {
	switch s {
	case Error:
		return "error"
	case Warning:
		return "warning"
	case Note:
		return "note"
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// Diagnostic is a single compiler message.
type Diagnostic struct {
	Pos      Pos
	Severity Severity
	Message  string
}

func (d *Diagnostic) Error() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Severity, d.Message)
}

// DiagList accumulates diagnostics across a compilation phase. The zero
// value is ready to use. DiagList is not safe for concurrent use; compiler
// phases are single-goroutine.
type DiagList struct {
	diags []*Diagnostic
}

// Errorf appends an Error diagnostic at pos.
func (l *DiagList) Errorf(pos Pos, format string, args ...any) {
	l.diags = append(l.diags, &Diagnostic{Pos: pos, Severity: Error, Message: fmt.Sprintf(format, args...)})
}

// Warnf appends a Warning diagnostic at pos.
func (l *DiagList) Warnf(pos Pos, format string, args ...any) {
	l.diags = append(l.diags, &Diagnostic{Pos: pos, Severity: Warning, Message: fmt.Sprintf(format, args...)})
}

// Notef appends a Note diagnostic at pos.
func (l *DiagList) Notef(pos Pos, format string, args ...any) {
	l.diags = append(l.diags, &Diagnostic{Pos: pos, Severity: Note, Message: fmt.Sprintf(format, args...)})
}

// All returns the accumulated diagnostics sorted by position (stable for
// equal positions, preserving emission order).
func (l *DiagList) All() []*Diagnostic {
	out := make([]*Diagnostic, len(l.diags))
	copy(out, l.diags)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Pos.Before(out[j].Pos) })
	return out
}

// HasErrors reports whether any Error-severity diagnostic was recorded.
func (l *DiagList) HasErrors() bool {
	for _, d := range l.diags {
		if d.Severity == Error {
			return true
		}
	}
	return false
}

// Len returns the total number of diagnostics.
func (l *DiagList) Len() int { return len(l.diags) }

// Err returns an error summarizing all Error diagnostics, or nil when there
// are none. Callers that only need pass/fail use this; callers rendering
// output use All.
func (l *DiagList) Err() error {
	if !l.HasErrors() {
		return nil
	}
	var b strings.Builder
	n := 0
	for _, d := range l.All() {
		if d.Severity != Error {
			continue
		}
		if n > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(d.Error())
		n++
	}
	return fmt.Errorf("%s", b.String())
}

// Merge appends all diagnostics from other.
func (l *DiagList) Merge(other *DiagList) {
	l.diags = append(l.diags, other.diags...)
}
