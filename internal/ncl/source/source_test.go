package source

import (
	"strings"
	"testing"
)

func TestPosString(t *testing.T) {
	cases := []struct {
		pos  Pos
		want string
	}{
		{Pos{}, "-"},
		{Pos{File: "a.ncl", Line: 3, Col: 7}, "a.ncl:3:7"},
		{Pos{Line: 2, Col: 1}, "2:1"},
	}
	for _, c := range cases {
		if got := c.pos.String(); got != c.want {
			t.Errorf("Pos%v.String() = %q, want %q", c.pos, got, c.want)
		}
	}
}

func TestPosBefore(t *testing.T) {
	a := Pos{File: "f", Line: 1, Col: 5}
	b := Pos{File: "f", Line: 1, Col: 9}
	c := Pos{File: "f", Line: 2, Col: 1}
	d := Pos{File: "g", Line: 1, Col: 1}
	if !a.Before(b) || !b.Before(c) || !a.Before(c) {
		t.Error("Before ordering within a file is wrong")
	}
	if b.Before(a) || c.Before(a) {
		t.Error("Before is not antisymmetric")
	}
	if !c.Before(d) {
		t.Error("positions should order by file name across files")
	}
}

func TestPosIsValid(t *testing.T) {
	if (Pos{}).IsValid() {
		t.Error("zero Pos must be invalid")
	}
	if !(Pos{Line: 1, Col: 1}).IsValid() {
		t.Error("1:1 must be valid")
	}
}

func TestFileLine(t *testing.T) {
	f := NewFile("t.ncl", []byte("alpha\nbeta\n\ngamma"))
	cases := []struct {
		n    int
		want string
		ok   bool
	}{
		{1, "alpha", true},
		{2, "beta", true},
		{3, "", true},
		{4, "gamma", true},
		{5, "", false},
		{0, "", false},
	}
	for _, c := range cases {
		got, ok := f.Line(c.n)
		if got != c.want || ok != c.ok {
			t.Errorf("Line(%d) = %q,%v want %q,%v", c.n, got, ok, c.want, c.ok)
		}
	}
}

func TestDiagListErrorsAndSorting(t *testing.T) {
	var dl DiagList
	dl.Warnf(Pos{File: "f", Line: 5, Col: 1}, "late warning")
	dl.Errorf(Pos{File: "f", Line: 2, Col: 3}, "first error")
	dl.Notef(Pos{File: "f", Line: 2, Col: 4}, "related note")
	if !dl.HasErrors() {
		t.Fatal("HasErrors should be true")
	}
	all := dl.All()
	if len(all) != 3 {
		t.Fatalf("len(All) = %d, want 3", len(all))
	}
	if all[0].Message != "first error" || all[1].Message != "related note" || all[2].Message != "late warning" {
		t.Errorf("diagnostics not sorted by position: %v", all)
	}
	err := dl.Err()
	if err == nil {
		t.Fatal("Err() should be non-nil")
	}
	if !strings.Contains(err.Error(), "first error") {
		t.Errorf("Err() missing message: %v", err)
	}
	if strings.Contains(err.Error(), "late warning") {
		t.Errorf("Err() should only include errors: %v", err)
	}
}

func TestDiagListNoErrors(t *testing.T) {
	var dl DiagList
	dl.Warnf(Pos{Line: 1, Col: 1}, "only a warning")
	if dl.HasErrors() {
		t.Error("warnings must not count as errors")
	}
	if err := dl.Err(); err != nil {
		t.Errorf("Err() = %v, want nil", err)
	}
	if dl.Len() != 1 {
		t.Errorf("Len() = %d, want 1", dl.Len())
	}
}

func TestDiagListMerge(t *testing.T) {
	var a, b DiagList
	a.Errorf(Pos{Line: 1, Col: 1}, "a")
	b.Errorf(Pos{Line: 2, Col: 1}, "b")
	a.Merge(&b)
	if a.Len() != 2 {
		t.Errorf("merged Len = %d, want 2", a.Len())
	}
}

func TestSeverityString(t *testing.T) {
	if Error.String() != "error" || Warning.String() != "warning" || Note.String() != "note" {
		t.Error("Severity.String mismatch")
	}
	if Severity(99).String() != "severity(99)" {
		t.Error("unknown severity formatting mismatch")
	}
}
